"""Content-addressed artifact cache and run observability records.

Two concerns live here because they are two halves of one contract:

* :class:`ArtifactCache` — an on-disk store for expensive derived
  artifacts (calibration shifts, sparsity reports, timing summaries,
  threshold sweep points).  Every artifact is addressed by a SHA-256 of
  the *content that determines it*: the experiment-config fingerprint
  (scale, seed, image count), the architecture geometry, the artifact
  kind, and its kind-specific parameters.  Two processes that ask for the
  same artifact therefore agree on the key without coordination, which is
  what lets the parallel runner's workers share work with each other and
  with prior runs.
* :class:`RunManifest` / :class:`UnitRecord` — the observability side:
  one record per scheduled work unit (wall time, worker pid, cache
  hit/miss counters) plus run-level totals, serialized to JSON so tests
  and tooling can assert on cache behaviour and wall-time distribution.

Cache layout (under ``PaperConfig.cache_dir``)::

    objects/<first two hex chars>/<sha256>.json
    objects/quarantine/<sha256>.json        (damaged objects, see below)

Writes go through a temp file + ``os.replace`` so concurrent workers
never observe a half-written artifact, and every object embeds a
``sha256`` checksum of its payload.  Reads verify the object end to end
— parseable JSON, the expected ``kind``, a payload whose recomputed
checksum matches — and treat *any* damaged object as a cache miss: the
file is moved to ``objects/quarantine/`` (for post-mortem inspection)
and the artifact is recomputed.  A corrupt cache can therefore cost
time, never correctness, and never a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro import obs
from repro.hw.config import ArchConfig
from repro.reliability.faults import FaultInjector

__all__ = [
    "stable_hash",
    "config_fingerprint",
    "ArtifactCache",
    "UnitRecord",
    "RunManifest",
]


def stable_hash(payload) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _truncate_file(path: Path) -> None:
    """Cut an object file in half (the ``cache:read=corrupt`` fault)."""
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
    except OSError:
        pass


def config_fingerprint(config, arch: ArchConfig) -> dict:
    """The config facets that per-network artifacts depend on.

    Deliberately excludes ``networks`` (each artifact names its own
    network, and a worker running a single-network config must produce
    the same keys as the full-sweep parent), ``cache_dir`` and
    ``use_cache`` (where/whether to cache cannot change what is cached).
    """
    return {
        "scale": config.scale,
        "seed": config.seed,
        "num_images": config.num_images,
        "arch": asdict(arch),
    }


class ArtifactCache:
    """Content-addressed JSON artifact store with hit/miss accounting."""

    def __init__(
        self,
        root: Path,
        fingerprint: dict,
        enabled: bool = True,
        injector: FaultInjector | None = None,
    ):
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.enabled = enabled
        self.config_hash = stable_hash(fingerprint)
        self.injector = injector if injector is not None else FaultInjector.from_env()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def key(self, kind: str, **params) -> str:
        """Content address of one artifact."""
        return stable_hash(
            {"fingerprint": self.fingerprint, "kind": kind, "params": params}
        )

    def path(self, kind: str, **params) -> Path:
        digest = self.key(kind, **params)
        return self.root / "objects" / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # load / store
    # ------------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.root / "objects" / "quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a damaged object aside so the slot can be recomputed."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            pass  # already moved/deleted by a concurrent reader, or read-only
        self.quarantined += 1
        obs.counter_add("artifact.quarantined")

    def load(self, kind: str, **params):
        """The cached payload, or None on a miss (or when disabled).

        A read failure is never worse than a miss: unreadable, truncated,
        JSON-invalid, mis-addressed, or checksum-mismatched objects are
        quarantined and reported as misses instead of raising.
        """
        if not self.enabled:
            return None
        path = self.path(kind, **params)
        if self.injector.fire("cache:read") == "corrupt":
            _truncate_file(path)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            obs.counter_add("artifact.misses")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            self.misses += 1
            obs.counter_add("artifact.misses")
            return None
        if (
            not isinstance(document, dict)
            or "payload" not in document
            or document.get("kind") != kind
            or document.get("sha256") != stable_hash(document["payload"])
        ):
            self._quarantine(path)
            self.misses += 1
            obs.counter_add("artifact.misses")
            return None
        self.hits += 1
        obs.counter_add("artifact.hits")
        return document["payload"]

    def store(self, kind: str, payload, **params) -> None:
        if not self.enabled:
            return
        self.injector.fire("cache:write")
        path = self.path(kind, **params)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "kind": kind,
            "params": params,
            "payload": payload,
            "sha256": stable_hash(payload),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        obs.counter_add("artifact.stores")

    def get_or_compute(self, kind: str, compute, **params):
        """Load ``kind``; on a miss run ``compute()`` and persist it."""
        cached = self.load(kind, **params)
        if cached is not None:
            return cached
        payload = compute()
        self.store(kind, payload, **params)
        return payload

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
        }

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        return {name: getattr(self, name) - snapshot[name] for name in snapshot}


@dataclass
class UnitRecord:
    """Observability record for one scheduled work unit."""

    unit: str  # e.g. "fig9:alex"
    experiment: str
    network: str | None
    phase: str  # "parallel" | "serial" | "assembly" | "carried"
    worker: int  # os.getpid() of whoever ran it
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    status: str = "ok"  # "ok" | "error" | "timeout" | "crashed"
    error: str = ""
    attempts: int = 1  # total tries this record summarizes
    traceback: str = ""  # full traceback of the last failed attempt

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "UnitRecord":
        known = {item.name for item in fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


@dataclass
class RunManifest:
    """Everything observable about one ``run_all`` invocation."""

    scale: str
    seed: int
    networks: list[str]
    jobs: int
    config_hash: str
    experiments: list[str] = field(default_factory=list)
    units: list[UnitRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_quarantined: int = 0
    #: Merged :mod:`repro.obs.metrics` snapshot (schema v4 carries the
    #: histogram quantile-sketch buckets; empty when
    #: loaded from a v2 manifest).
    metrics: dict = field(default_factory=dict)

    def add_unit(self, record: UnitRecord) -> None:
        self.units.append(record)
        self.cache_hits += record.cache_hits
        self.cache_misses += record.cache_misses

    def completed_units(self) -> set[str]:
        """Labels of units that finished successfully (``--resume`` skips
        these; everything else re-executes)."""
        return {
            unit.unit
            for unit in self.units
            if unit.status == "ok" and unit.phase in ("parallel", "carried")
        }

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "version": 4,
            "scale": self.scale,
            "seed": self.seed,
            "networks": list(self.networks),
            "jobs": self.jobs,
            "config_hash": self.config_hash,
            "experiments": list(self.experiments),
            "wall_seconds": self.wall_seconds,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "stores": self.cache_stores,
                "quarantined": self.cache_quarantined,
                "hit_rate": self.hit_rate,
            },
            "metrics": self.metrics,
            "units": [unit.to_dict() for unit in self.units],
        }

    def save(self, path: Path | str) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, path: Path | str) -> "RunManifest":
        with open(path) as handle:
            payload = json.load(handle)
        manifest = cls(
            scale=payload["scale"],
            seed=payload["seed"],
            networks=payload["networks"],
            jobs=payload["jobs"],
            config_hash=payload["config_hash"],
            experiments=payload.get("experiments", []),
            wall_seconds=payload.get("wall_seconds", 0.0),
        )
        for unit in payload.get("units", []):
            manifest.add_unit(UnitRecord.from_dict(unit))
        manifest.cache_stores = payload.get("cache", {}).get("stores", 0)
        manifest.cache_quarantined = payload.get("cache", {}).get("quarantined", 0)
        # v2 manifests predate the metrics snapshot; load them tolerantly.
        metrics = payload.get("metrics", {})
        manifest.metrics = metrics if isinstance(metrics, dict) else {}
        return manifest

    def profile_table(self) -> str:
        """The ``--profile`` view: where the wall time went, worst first."""
        from repro.experiments.report import format_table

        rows = [
            {
                "unit": unit.unit,
                "phase": unit.phase,
                "worker": unit.worker,
                "seconds": unit.seconds,
                "hits": unit.cache_hits,
                "misses": unit.cache_misses,
                "attempts": unit.attempts,
                "status": unit.status,
            }
            for unit in sorted(self.units, key=lambda u: -u.seconds)
        ]
        header = (
            f"== run profile: {len(self.units)} units, "
            f"{self.wall_seconds:.1f}s wall, jobs={self.jobs}, "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.hit_rate:.0%} hit rate) =="
        )
        parts = [header]
        counters = self.metrics.get("counters", {})
        engine_hits = counters.get("engine.cache.hits", 0)
        engine_misses = counters.get("engine.cache.misses", 0)
        engine_total = engine_hits + engine_misses
        if engine_total:
            parts.append(
                f"engine cache: {engine_hits:.0f} hits / "
                f"{engine_misses:.0f} misses / "
                f"{counters.get('engine.cache.evictions', 0):.0f} evictions "
                f"({engine_hits / engine_total:.0%} hit rate)"
            )
        parts.append(format_table(rows))
        failed = [unit for unit in self.units if unit.status != "ok"]
        for unit in failed:
            parts.append(f"\n-- {unit.unit} failed ({unit.status}): {unit.error}")
            if unit.traceback:
                parts.append(unit.traceback.rstrip("\n"))
        return "\n".join(parts)

"""Fig. 11 — area breakdown of the baseline and CNV.

Paper: SB dominates both architectures; CNV's NM grows 34% (offsets +
banking), SRAM grows 15.8% (offset buffers), unit logic is negligible, and
the total overhead is 4.49%.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult
from repro.power.area import area_breakdown, cnv_area_overhead
from repro.power.components import BASELINE, CNV, COMPONENTS

__all__ = ["run"]

PAPER_DELTAS = {"nm": 0.34, "sram": 0.158, "logic": 0.02, "sb": 0.0}


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    base = area_breakdown(BASELINE)
    cnv = area_breakdown(CNV)
    rows = []
    for component in COMPONENTS:
        rows.append(
            {
                "component": component,
                "baseline_mm2": base.by_component[component],
                "cnv_mm2": cnv.by_component[component],
                "delta": cnv.by_component[component] / base.by_component[component]
                - 1.0,
                "paper_delta": PAPER_DELTAS[component],
            }
        )
    rows.append(
        {
            "component": "total",
            "baseline_mm2": base.total,
            "cnv_mm2": cnv.total,
            "delta": cnv_area_overhead(),
            "paper_delta": 0.0449,
        }
    )
    return ExperimentResult(
        experiment="fig11",
        title="Area breakdown",
        rows=rows,
        notes="per-component areas are calibrated to the paper's published "
        "ratios (no synthesis flow available); see DESIGN.md.",
    )

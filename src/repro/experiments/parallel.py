"""Parallel scheduling of (experiment × network) work units.

``run_all`` decomposes into independent work units — one per (experiment,
network) pair, plus network-independent singletons (fig11's area model,
fig14's trained-small-CNN greedy search).  Units that share a network
form a *chain*: they need the same expensive primitives (calibrated
weights, forward activations), so the chain executes sequentially inside
one worker process sharing one in-memory :class:`ExperimentContext`,
while distinct chains run concurrently on the process pool, up to
``jobs`` workers.  Every derived artifact a unit computes is persisted
to the shared content-addressed
:class:`~repro.experiments.manifest.ArtifactCache`, so reruns — and the
parent — never recompute what any worker already produced.

After the pool drains, the parent performs a deterministic *assembly*
pass: the unchanged serial experiment loop, which finds all expensive
artifacts already cached and therefore reproduces the serial paper-order
output exactly (floats survive the JSON round-trip bit-for-bit).

Worker failures are recorded in the unit's manifest entry rather than
aborting the pool; the assembly pass will recompute whatever the failed
unit did not cache (and surface any real error in paper order).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.manifest import UnitRecord
from repro.hw.config import PAPER_CONFIG, ArchConfig

__all__ = ["WorkUnit", "plan_units", "execute_units", "run_unit", "run_chain"]

#: Experiments whose result does not depend on any network context.
GLOBAL_EXPERIMENTS = ("fig11",)


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of ``run_all``.

    ``kind`` selects what the worker executes:

    ``experiment``  the registered experiment on a single-network config
    ``sweep``       the full threshold-sweep ladder for one network
                    (fig14's per-network half, superset of fig9/table2)
    ``smallcnn``    fig14's trained-small-CNN greedy search
    ``timings``     baseline + CNV timing summaries only (used by
                    ``cnvlutin-sim network --jobs``)
    """

    experiment: str
    network: str | None
    kind: str = "experiment"

    @property
    def label(self) -> str:
        if self.kind == "smallcnn":
            return f"{self.experiment}:smallcnn"
        return f"{self.experiment}:{self.network or 'all'}"

    @property
    def affinity(self) -> str:
        """Units with equal affinity share a chain (and a worker context)."""
        if self.network is not None:
            return self.network
        return f"@{self.label}"


def plan_units(config: PaperConfig, names: list[str]) -> list[WorkUnit]:
    """Decompose the selected experiments into work units, paper order."""
    units: list[WorkUnit] = []
    for name in names:
        if name in GLOBAL_EXPERIMENTS:
            units.append(WorkUnit(name, None))
        elif name == "fig14":
            for network in config.networks:
                units.append(WorkUnit(name, network, kind="sweep"))
            if config.smallcnn:
                units.append(WorkUnit(name, None, kind="smallcnn"))
        else:
            for network in config.networks:
                units.append(WorkUnit(name, network))
    return units


def run_unit(ctx: ExperimentContext, unit: WorkUnit, phase: str = "parallel") -> UnitRecord:
    """Execute one work unit against ``ctx``; returns its manifest record.

    The valuable output is the set of derived artifacts persisted to the
    content-addressed cache — per-unit aggregates are discarded.
    """
    from repro.experiments.fig14_pruning import smallcnn_tradeoff
    from repro.experiments.runner import EXPERIMENTS
    from repro.experiments.thresholds import sweep_deltas

    start = time.time()
    snapshot = ctx.artifacts.counters()
    status, error = "ok", ""
    try:
        if unit.kind == "sweep":
            sweep_deltas(ctx, unit.network)
        elif unit.kind == "smallcnn":
            smallcnn_tradeoff(ctx)
        elif unit.kind == "timings":
            ctx.baseline_timing(unit.network)
            ctx.cnv_timing(unit.network)
        else:
            EXPERIMENTS[unit.experiment](ctx)
    except Exception as exc:  # recorded; assembly surfaces real failures
        status, error = "error", f"{type(exc).__name__}: {exc}"
    delta = ctx.artifacts.delta_since(snapshot)
    return UnitRecord(
        unit=unit.label,
        experiment=unit.experiment,
        network=unit.network,
        phase=phase,
        worker=os.getpid(),
        seconds=time.time() - start,
        cache_hits=delta["hits"],
        cache_misses=delta["misses"],
        status=status,
        error=error,
    )


def run_chain(
    config: PaperConfig, arch: ArchConfig, units: list[WorkUnit]
) -> list[UnitRecord]:
    """Execute one affinity chain in this process, sharing one context.

    All units in a chain target the same network (or are a singleton), so
    a single context restricted to that network lets later units reuse
    the forwards and calibration earlier units already built in memory —
    zero duplicate computation inside a run.
    """
    network = units[0].network
    cfg = replace(config, networks=[network]) if network is not None else config
    ctx = ExperimentContext(cfg, arch=arch)
    return [run_unit(ctx, unit) for unit in units]


def execute_units(
    config: PaperConfig,
    units: list[WorkUnit],
    jobs: int,
    arch: ArchConfig = PAPER_CONFIG,
) -> list[UnitRecord]:
    """Run the units on a process pool, one task per affinity chain.

    Returns records in planning order regardless of completion order, so
    the manifest is deterministic up to timings/worker ids.
    """
    chains: "OrderedDict[str, list[tuple[int, WorkUnit]]]" = OrderedDict()
    for index, unit in enumerate(units):
        chains.setdefault(unit.affinity, []).append((index, unit))

    records: dict[int, UnitRecord] = {}
    if jobs <= 1 or len(chains) <= 1:
        for chain in chains.values():
            indices = [index for index, _ in chain]
            chain_units = [unit for _, unit in chain]
            for index, record in zip(indices, run_chain(config, arch, chain_units)):
                records[index] = record
        return [records[index] for index in sorted(records)]

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {}
        for affinity, chain in chains.items():
            chain_units = [unit for _, unit in chain]
            futures[pool.submit(run_chain, config, arch, chain_units)] = chain
        for future, chain in futures.items():
            try:
                chain_records = future.result()
            except Exception as exc:  # pool/pickling failure
                chain_records = [
                    UnitRecord(
                        unit=unit.label,
                        experiment=unit.experiment,
                        network=unit.network,
                        phase="parallel",
                        worker=0,
                        seconds=0.0,
                        status="error",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    for _, unit in chain
                ]
            for (index, _), record in zip(chain, chain_records):
                records[index] = record
    return [records[index] for index in sorted(records)]

"""Parallel scheduling of (experiment × network) work units.

``run_all`` decomposes into independent work units — one per (experiment,
network) pair, plus network-independent singletons (fig11's area model,
fig14's trained-small-CNN greedy search).  Units that share a network
form a *chain*: they need the same expensive primitives (calibrated
weights, forward activations), so the chain executes sequentially inside
one worker process sharing one in-memory :class:`ExperimentContext`,
while distinct chains run concurrently on the process pool, up to
``jobs`` workers.  Every derived artifact a unit computes is persisted
to the shared content-addressed
:class:`~repro.experiments.manifest.ArtifactCache`, so reruns — and the
parent — never recompute what any worker already produced.

After the pool drains, the parent performs a deterministic *assembly*
pass: the unchanged serial experiment loop, which finds all expensive
artifacts already cached and therefore reproduces the serial paper-order
output exactly (floats survive the JSON round-trip bit-for-bit).

Failure handling (see :mod:`repro.reliability`): every unit gets
``RetryPolicy.max_attempts`` tries with deterministic exponential
backoff between attempts.  A worker that dies (``BrokenProcessPool``) or
blows its wall-clock budget takes its pool down; the pool is respawned
and only incomplete units are resubmitted — completed units keep their
records, and retried units find their finished artifacts in the cache,
so a retry costs far less than the first attempt.  Units that exhaust
their attempts are *recorded* as failed rather than aborting the run;
the assembly pass decides whether that is fatal (``--strict``) or
degrades to explicitly-marked partial tables.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable

from repro import obs
from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.manifest import UnitRecord
from repro.hw.config import PAPER_CONFIG, ArchConfig
from repro.reliability import FaultInjector, RetryPolicy

__all__ = ["WorkUnit", "plan_units", "execute_units", "run_unit", "run_chain"]

#: Experiments whose result does not depend on any network context.
GLOBAL_EXPERIMENTS = ("fig11",)


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of ``run_all``.

    ``kind`` selects what the worker executes:

    ``experiment``  the registered experiment on a single-network config
    ``sweep``       the full threshold-sweep ladder for one network
                    (fig14's per-network half, superset of fig9/table2)
    ``smallcnn``    fig14's trained-small-CNN greedy search
    ``timings``     baseline + CNV timing summaries only (used by
                    ``cnvlutin-sim network --jobs``)
    """

    experiment: str
    network: str | None
    kind: str = "experiment"

    @property
    def label(self) -> str:
        if self.kind == "smallcnn":
            return f"{self.experiment}:smallcnn"
        return f"{self.experiment}:{self.network or 'all'}"

    @property
    def affinity(self) -> str:
        """Units with equal affinity share a chain (and a worker context)."""
        if self.network is not None:
            return self.network
        return f"@{self.label}"

    @property
    def fault_site(self) -> str:
        """This unit's fault-injection site name, e.g. ``unit:fig9/nin``."""
        if self.kind == "smallcnn":
            return f"unit:{self.experiment}/smallcnn"
        return f"unit:{self.experiment}/{self.network or 'all'}"


def plan_units(config: PaperConfig, names: list[str]) -> list[WorkUnit]:
    """Decompose the selected experiments into work units, paper order."""
    units: list[WorkUnit] = []
    for name in names:
        if name in GLOBAL_EXPERIMENTS:
            units.append(WorkUnit(name, None))
        elif name == "fig14":
            for network in config.networks:
                units.append(WorkUnit(name, network, kind="sweep"))
            if config.smallcnn:
                units.append(WorkUnit(name, None, kind="smallcnn"))
        else:
            for network in config.networks:
                units.append(WorkUnit(name, network))
    return units


def run_unit(
    ctx: ExperimentContext,
    unit: WorkUnit,
    phase: str = "parallel",
    attempt: int = 0,
    injector: FaultInjector | None = None,
) -> UnitRecord:
    """Execute one work unit against ``ctx``; returns its manifest record.

    The valuable output is the set of derived artifacts persisted to the
    content-addressed cache — per-unit aggregates are discarded.  The
    fault site ``unit:<experiment>/<network>`` fires with the attempt
    number as its trial index, so a ``@0`` rule fails exactly the first
    try and lets the retry succeed.
    """
    from repro.experiments.fig14_pruning import smallcnn_tradeoff
    from repro.experiments.runner import EXPERIMENTS
    from repro.experiments.thresholds import sweep_deltas

    if injector is None:
        injector = FaultInjector.from_env()
    start = time.perf_counter()
    snapshot = ctx.artifacts.counters()
    status, error, trace = "ok", "", ""
    with obs.span(
        f"unit:{unit.label}", cat="unit", unit=unit.label, attempt=attempt,
        phase=phase, kind=unit.kind,
    ) as unit_span:
        try:
            injector.fire(unit.fault_site, trial=attempt)
            if unit.kind == "sweep":
                sweep_deltas(ctx, unit.network)
            elif unit.kind == "smallcnn":
                smallcnn_tradeoff(ctx)
            elif unit.kind == "timings":
                ctx.baseline_timing(unit.network)
                ctx.cnv_timing(unit.network)
            else:
                EXPERIMENTS[unit.experiment](ctx)
        except Exception as exc:  # recorded; the caller decides retry vs surface
            status, error = "error", f"{type(exc).__name__}: {exc}"
            trace = traceback.format_exc()
        unit_span.set(status=status)
    obs.counter_add(f"unit.attempts.{status}")
    delta = ctx.artifacts.delta_since(snapshot)
    return UnitRecord(
        unit=unit.label,
        experiment=unit.experiment,
        network=unit.network,
        phase=phase,
        worker=os.getpid(),
        seconds=time.perf_counter() - start,
        cache_hits=delta["hits"],
        cache_misses=delta["misses"],
        status=status,
        error=error,
        attempts=attempt + 1,
        traceback=trace,
    )


def run_chain(
    config: PaperConfig,
    arch: ArchConfig,
    units: list[WorkUnit],
    attempts: list[int] | None = None,
) -> list[UnitRecord]:
    """Execute one affinity chain in this process, sharing one context.

    All units in a chain target the same network (or are a singleton), so
    a single context restricted to that network lets later units reuse
    the forwards and calibration earlier units already built in memory —
    zero duplicate computation inside a run.  ``attempts`` carries each
    unit's 0-based attempt number across pool respawns.
    """
    if attempts is None:
        attempts = [0] * len(units)
    network = units[0].network
    cfg = replace(config, networks=[network]) if network is not None else config
    ctx = ExperimentContext(cfg, arch=arch)
    injector = FaultInjector.from_env()
    return [
        run_unit(ctx, unit, attempt=attempt, injector=injector)
        for unit, attempt in zip(units, attempts)
    ]


def _worker_chain(
    config: PaperConfig,
    arch: ArchConfig,
    units: list[WorkUnit],
    attempts: list[int],
    trace: bool = False,
) -> dict:
    """Pool entry point: fire the ``pool:worker`` fault site, then run.

    ``pool:worker=crash`` rules hard-kill this process here, which the
    parent observes as a ``BrokenProcessPool`` — the same signal a
    segfault or the OOM killer produces.

    Returns ``{"records", "events", "metrics"}``: alongside the unit
    records, the worker drains its span buffer (when ``trace`` asked for
    tracing) and takes a metrics snapshot, so the parent can merge both
    into one coherent per-run trace/registry.  Draining per task means a
    reused worker never re-ships what it already reported.
    """
    if trace:
        obs.enable_tracing()
    FaultInjector.from_env().fire("pool:worker")
    records = run_chain(config, arch, units, attempts)
    return {
        "records": records,
        "events": obs.drain_events() if trace else [],
        "metrics": obs.take_snapshot(),
    }


def _lost_unit_record(unit: WorkUnit, attempt: int, status: str, error: str) -> UnitRecord:
    """Record for a unit whose worker died or hung before reporting."""
    return UnitRecord(
        unit=unit.label,
        experiment=unit.experiment,
        network=unit.network,
        phase="parallel",
        worker=0,
        seconds=0.0,
        status=status,
        error=error,
        attempts=attempt + 1,
    )


def _shutdown_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
    """Tear a pool down; with ``kill`` terminate workers first (hung or
    crashed pools cannot drain their queues on their own)."""
    processes = list(getattr(pool, "_processes", {}).values()) if kill else []
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=not kill, cancel_futures=True)
    except Exception:
        pass
    for process in processes:
        try:
            process.join(timeout=5.0)
        except Exception:
            pass


def execute_units(
    config: PaperConfig,
    units: list[WorkUnit],
    jobs: int,
    arch: ArchConfig = PAPER_CONFIG,
    policy: RetryPolicy | None = None,
    checkpoint: Callable[[list[UnitRecord]], None] | None = None,
) -> list[UnitRecord]:
    """Run the units under ``policy``; one pool task per affinity chain.

    Returns final records in planning order regardless of completion
    order, so the manifest is deterministic up to timings/worker ids.
    ``checkpoint`` (if given) is invoked with the records-so-far after
    every unit reaches a final state, which is what makes a killed run
    resumable from its manifest.

    Pool-only semantics: per-unit wall-clock timeouts and ``pool:worker``
    faults need a killable worker process, so they apply only on the
    ``jobs > 1`` path; the serial path still retries with backoff.
    """
    policy = policy if policy is not None else RetryPolicy()
    chains: "OrderedDict[str, list[int]]" = OrderedDict()
    for index, unit in enumerate(units):
        chains.setdefault(unit.affinity, []).append(index)

    final: dict[int, UnitRecord] = {}

    def finalize(index: int, record: UnitRecord) -> None:
        final[index] = record
        if checkpoint is not None:
            checkpoint([final[i] for i in sorted(final)])

    if jobs <= 1 or len(chains) <= 1:
        for indices in chains.values():
            chain_units = [units[i] for i in indices]
            network = chain_units[0].network
            cfg = replace(config, networks=[network]) if network is not None else config
            ctx = ExperimentContext(cfg, arch=arch)
            injector = FaultInjector.from_env()
            for index, unit in zip(indices, chain_units):
                attempt = 0
                while True:
                    record = run_unit(ctx, unit, attempt=attempt, injector=injector)
                    if record.status == "ok" or not policy.retries_left(attempt):
                        finalize(index, record)
                        break
                    time.sleep(policy.delay(unit.label, attempt))
                    attempt += 1
        return [final[index] for index in sorted(final)]

    pending: dict[int, int] = {index: 0 for index in range(len(units))}

    def handle_failure(index: int, record: UnitRecord, delays: list[float]) -> None:
        attempt = pending[index]
        if policy.retries_left(attempt):
            pending[index] = attempt + 1
            delays.append(policy.delay(units[index].label, attempt))
        else:
            finalize(index, record)
            pending.pop(index, None)

    while pending:
        round_chains: "OrderedDict[str, list[int]]" = OrderedDict()
        for index in sorted(pending):
            round_chains.setdefault(units[index].affinity, []).append(index)
        pool = ProcessPoolExecutor(max_workers=jobs)
        futures: dict = {}
        submitted = time.monotonic()
        for indices in round_chains.values():
            chain_units = [units[i] for i in indices]
            chain_attempts = [pending[i] for i in indices]
            future = pool.submit(
                _worker_chain, config, arch, chain_units, chain_attempts,
                trace=obs.tracing_enabled(),
            )
            budget = policy.chain_timeout(len(chain_units))
            deadline = None if budget is None else submitted + budget
            futures[future] = (indices, deadline)
        delays: list[float] = []
        killed = False
        try:
            while futures:
                deadlines = [d for _, d in futures.values() if d is not None]
                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
                done, _ = wait(set(futures), timeout=timeout, return_when=FIRST_COMPLETED)
                crashed = False
                for future in done:
                    indices, _ = futures.pop(future)
                    try:
                        payload = future.result()
                        chain_records = payload["records"]
                        obs.extend_events(payload["events"])
                        obs.merge_snapshot(payload["metrics"])
                    except BrokenProcessPool as exc:
                        # A worker died mid-round.  Attribution is ambiguous
                        # (every in-flight future raises), so every
                        # uncollected unit burns an attempt — retried units
                        # replay cheaply from the artifact cache.
                        crashed = True
                        for i in indices:
                            handle_failure(
                                i,
                                _lost_unit_record(
                                    units[i], pending[i], "crashed",
                                    f"worker process died: {exc}",
                                ),
                                delays,
                            )
                        continue
                    except Exception as exc:  # pickling/submission failure
                        for i in indices:
                            handle_failure(
                                i,
                                _lost_unit_record(
                                    units[i], pending[i], "error",
                                    f"{type(exc).__name__}: {exc}",
                                ),
                                delays,
                            )
                        continue
                    for i, record in zip(indices, chain_records):
                        if record.status == "ok":
                            finalize(i, record)
                            pending.pop(i, None)
                        else:
                            handle_failure(i, record, delays)
                if crashed:
                    for future, (indices, _) in list(futures.items()):
                        for i in indices:
                            handle_failure(
                                i,
                                _lost_unit_record(
                                    units[i], pending[i], "crashed",
                                    "worker pool broke before this chain reported",
                                ),
                                delays,
                            )
                    futures.clear()
                    killed = True
                    break
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, deadline) in futures.items()
                    if deadline is not None and now >= deadline and not future.done()
                ]
                if expired:
                    for future in expired:
                        indices, _ = futures.pop(future)
                        for i in indices:
                            handle_failure(
                                i,
                                _lost_unit_record(
                                    units[i], pending[i], "timeout",
                                    f"exceeded the {policy.unit_timeout}s/unit "
                                    "wall-clock budget",
                                ),
                                delays,
                            )
                    # The hung worker cannot be cancelled, only killed; the
                    # round's survivors are resubmitted without burning an
                    # attempt and replay from the cache.
                    killed = True
                    break
        finally:
            _shutdown_pool(pool, kill=killed)
        if delays and pending:
            time.sleep(max(delays))
    return [final[index] for index in sorted(final)]

"""Per-layer pruning-threshold derivation for the six networks.

The paper finds per-layer power-of-two thresholds by gradient-descent
exploration against measured ImageNet accuracy (Section V-E).  We
demonstrate that exact search end-to-end on the trained small CNN
(:mod:`repro.nn.training` + :class:`repro.core.pruning.ThresholdSearcher`);
for the six calibrated networks — whose random weights have no trained
accuracy — thresholds come from a *single-knob percentile rule*:

    threshold(layer) = largest power of two (in fixed-point LSBs) at or
    below the delta-quantile of the layer's live (non-zero) output
    magnitudes,

and the knob ``delta`` is raised while the pruned network still reproduces
the unpruned network's top-1 predictions on every sample image (the
"lossless" criterion; prediction stability substitutes for accuracy, see
DESIGN.md).  For google, thresholds are shared per inception module as in
the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pruning import raw_to_real
from repro.experiments.context import ExperimentContext
from repro.nn.tensor import DEFAULT_FORMAT

__all__ = [
    "ThresholdSweepPoint",
    "quantile_thresholds",
    "lossless_thresholds",
    "threshold_groups",
    "sweep_deltas",
]

#: Percentile knob ladder explored for the lossless search and Fig. 14.
DEFAULT_DELTAS = (0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.60)


def _largest_power_of_two_at_most(raw: float) -> int:
    if raw < 1.0:
        return 0
    return 1 << int(np.floor(np.log2(raw)))


def threshold_groups(ctx: ExperimentContext, name: str) -> dict[str, str]:
    """Map conv layers to threshold groups (inception modules for google)."""
    network = ctx.network_structure(name)
    groups: dict[str, str] = {}
    for layer in network.conv_layers:
        if name == "google" and layer.name.startswith("inception_"):
            groups[layer.name] = layer.name.split("/")[0]
        else:
            groups[layer.name] = layer.name
    return groups


def quantile_thresholds(
    ctx: ExperimentContext, name: str, delta: float
) -> dict[str, int]:
    """Raw per-conv-layer thresholds at percentile ``delta``.

    Thresholds apply to each layer's *output* (where the CNV encoder
    compares); grouped layers (google inception modules) share the group's
    minimum so no layer in the group prunes above its own delta-quantile.
    """
    cached = ctx.artifacts.load("quantile_thresholds", network=name, delta=delta)
    if cached is not None:
        return {layer: int(value) for layer, value in cached.items()}
    magnitudes = _output_magnitudes(ctx, name)
    groups = threshold_groups(ctx, name)
    per_layer: dict[str, int] = {}
    for layer, mags in magnitudes.items():
        if mags.size == 0:
            per_layer[layer] = 0
            continue
        q = float(np.quantile(mags, delta))
        per_layer[layer] = _largest_power_of_two_at_most(q * DEFAULT_FORMAT.scale)
    # Enforce group sharing.
    group_min: dict[str, int] = {}
    for layer, raw in per_layer.items():
        group = groups[layer]
        group_min[group] = min(group_min.get(group, raw), raw)
    result = {layer: group_min[groups[layer]] for layer in per_layer}
    ctx.artifacts.store("quantile_thresholds", result, network=name, delta=delta)
    return result


def _output_magnitudes(ctx: ExperimentContext, name: str) -> dict[str, np.ndarray]:
    """|non-zero| output magnitudes per fused-ReLU conv layer (image 0)."""
    cache_attr = "_output_magnitudes_cache"
    cache = getattr(ctx, cache_attr, None)
    if cache is None:
        cache = {}
        setattr(ctx, cache_attr, cache)
    if name in cache:
        return cache[name]
    nctx = ctx.network_ctx(name)
    result = ctx.engine(name).run(collect_conv_inputs=False, keep_outputs=True)
    out: dict[str, np.ndarray] = {}
    for layer in nctx.network.conv_layers:
        if not layer.fused_relu:
            continue
        arr = result.outputs[layer.name][0]
        live = np.abs(arr[arr != 0.0])
        # Subsample huge layers: quantiles need only a sketch.
        if live.size > 200_000:
            rng = np.random.default_rng(0)
            live = rng.choice(live, size=200_000, replace=False)
        out[layer.name] = live
    cache[name] = out
    return out


@dataclass
class ThresholdSweepPoint:
    """One evaluated percentile knob setting for one network."""

    delta: float
    raw_thresholds: dict[str, int]
    stability: float
    speedup: float


def _real_thresholds(raw: dict[str, int]) -> dict[str, float]:
    return {k: raw_to_real(v) for k, v in raw.items() if v}


def sweep_deltas(
    ctx: ExperimentContext,
    name: str,
    deltas: tuple[float, ...] = DEFAULT_DELTAS,
    stop_below_stability: float | None = None,
) -> list[ThresholdSweepPoint]:
    """Evaluate the percentile ladder: (stability, speedup) per delta.

    With ``stop_below_stability`` set, the sweep stops once stability falls
    below it (used by the lossless search to avoid pointless forwards).
    """
    cache = getattr(ctx, "_sweep_point_cache", None)
    if cache is None:
        cache = {}
        setattr(ctx, "_sweep_point_cache", cache)
    points: list[ThresholdSweepPoint] = []
    for delta in deltas:
        key = (name, delta)
        if key not in cache:
            stored = ctx.artifacts.load("sweep_point", network=name, delta=delta)
            if stored is not None:
                cache[key] = ThresholdSweepPoint(
                    delta=delta,
                    raw_thresholds={
                        k: int(v) for k, v in stored["raw_thresholds"].items()
                    },
                    stability=stored["stability"],
                    speedup=stored["speedup"],
                )
            else:
                raw = quantile_thresholds(ctx, name, delta)
                thresholds = _real_thresholds(raw)
                point = ThresholdSweepPoint(
                    delta=delta,
                    raw_thresholds=raw,
                    stability=ctx.prediction_stability(name, thresholds),
                    speedup=ctx.speedup(name, thresholds),
                )
                ctx.artifacts.store(
                    "sweep_point",
                    {
                        "raw_thresholds": point.raw_thresholds,
                        "stability": point.stability,
                        "speedup": point.speedup,
                    },
                    network=name,
                    delta=delta,
                )
                cache[key] = point
        point = cache[key]
        points.append(point)
        if stop_below_stability is not None and point.stability < stop_below_stability:
            break
    return points


def lossless_thresholds(
    ctx: ExperimentContext,
    name: str,
    deltas: tuple[float, ...] = DEFAULT_DELTAS,
) -> ThresholdSweepPoint:
    """Largest-delta configuration that keeps every prediction unchanged.

    Returns the Table II row analogue for one network (falls back to
    no pruning when even the smallest delta already flips a prediction).
    """
    points = sweep_deltas(ctx, name, deltas, stop_below_stability=1.0)
    lossless = [p for p in points if p.stability >= 1.0]
    if not lossless:
        return ThresholdSweepPoint(
            delta=0.0,
            raw_thresholds={k: 0 for k in quantile_thresholds(ctx, name, deltas[0])},
            stability=1.0,
            speedup=ctx.speedup(name),
        )
    return max(lossless, key=lambda p: p.speedup)

"""Table II — lossless ineffectual-neuron thresholds and their speedups.

Paper: per-conv-layer power-of-two thresholds (per inception module for
google) that maximize speedup with no accuracy loss; speedups 1.37-1.75.
Here the six calibrated networks use the percentile rule of
:mod:`repro.experiments.thresholds` with prediction stability as the
lossless criterion, and the trained small CNN additionally runs the
paper's actual greedy search against true accuracy (reported as an extra
row) — see DESIGN.md for the substitution rationale.

The lossless search is a threshold sweep and therefore runs on the
incremental batched engine (:mod:`repro.nn.engine`) via
``ExperimentContext``: each delta's stability check is one batched pass
with cached upstream prefixes, and the follow-up timing forward replays
from the engine cache instead of recomputing (see EXPERIMENTS.md,
"Forward engine").
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult
from repro.experiments.thresholds import lossless_thresholds, threshold_groups

__all__ = ["run", "PAPER_THRESHOLDS"]

#: Table II as published.
PAPER_THRESHOLDS = {
    "alex": "8,4,8,16,8",
    "nin": "4,8,16,16,16,16,32,32,16,8,16,4",
    "google": "4,4,8,16,4,4,4,4,2,2,2",
    "cnnM": "8,2,4,4,2",
    "cnnS": "4,4,8,4,4",
    "vgg19": "8,4,16,64,64,64,64,128,256,256,256,128,64,32,16,16",
}

PAPER_TABLE2_SPEEDUPS = {
    "alex": 1.53,
    "nin": 1.39,
    "google": 1.37,
    "cnnM": 1.56,
    "cnnS": 1.75,
    "vgg19": 1.57,
}


def _format_thresholds(ctx: ExperimentContext, name: str, raw: dict[str, int]) -> str:
    """Comma list in network layer order, one value per threshold group."""
    network = ctx.network_structure(name)
    groups = threshold_groups(ctx, name)
    seen: list[str] = []
    values: list[str] = []
    for layer in network.conv_layers:
        group = groups[layer.name]
        if group in seen:
            continue
        seen.append(group)
        values.append(str(raw[layer.name]))
    return ",".join(values)


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    for name in ctx.config.networks:
        point = lossless_thresholds(ctx, name)
        rows.append(
            {
                "network": name,
                "thresholds": _format_thresholds(ctx, name, point.raw_thresholds),
                "speedup": point.speedup,
                "paper_thresholds": PAPER_THRESHOLDS.get(name, "-"),
                "paper_speedup": PAPER_TABLE2_SPEEDUPS.get(name, float("nan")),
            }
        )
    return ExperimentResult(
        experiment="table2",
        title="Lossless ineffectual-neuron thresholds",
        rows=rows,
        notes="thresholds in fixed-point LSBs (Q8.8); google grouped per "
        "inception module as in the paper.",
    )

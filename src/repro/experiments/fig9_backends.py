"""Multi-backend speedup comparison over the DaDianNao baseline.

Every registered backend except the baseline itself (discovery through
:mod:`repro.backends` — the table grows a column when a backend
registers) is timed at a ladder of activation-pruning thresholds, giving
a fig9-style speedup table that places the paper's CNV between the
zero-gating lower bound and the weight-sparsity follow-ups:

* ``gated`` — baseline cycles by construction (speedup 1.0); its savings
  are energy-only.
* ``cnv`` — the paper's activation skipping; rises with pruning delta.
* ``cnv2`` — activation *and* weight skipping; the offset-pair
  intersection can never dispatch more than CNV does, so its speedup is
  asserted ``>= cnv`` at every threshold (a model invariant, not a
  statistical observation).
* ``scnn`` — compressed-sparse Cartesian-product dataflow; its multiply
  count is cross-validated against an independently-accumulated
  effectual-pair count (``scnn_mults`` must equal ``scnn_pairs``
  exactly) before the speedup is reported.

Weight-sparse backends run at
:data:`~repro.backends.weights.DEFAULT_WEIGHT_SPARSITY` magnitude
pruning.  Per-(network, delta) timings and the pair counts persist to
the artifact cache, so the parallel runner's assembly pass (and any
rerun) reproduces the table byte-identically without recomputation.
"""

from __future__ import annotations

import numpy as np

from repro.backends import (
    DEFAULT_WEIGHT_SPARSITY,
    backend_names,
    effectual_pair_count,
)
from repro.baseline.timing import conv_works_from_inputs
from repro.core.pruning import raw_to_real
from repro.experiments.context import ExperimentContext, thresholds_key
from repro.experiments.report import ExperimentResult
from repro.experiments.thresholds import quantile_thresholds

__all__ = ["run", "DELTAS", "compared_backends", "scnn_pair_count"]

#: Activation-pruning percentile knobs compared (0.0 = no pruning).
DELTAS = (0.0, 0.10, 0.30, 0.50)


def compared_backends() -> list[str]:
    """Every registered backend except the baseline (the denominator)."""
    return [name for name in backend_names() if name != "baseline"]


def _pruning_thresholds(
    ctx: ExperimentContext, name: str, delta: float
) -> dict[str, float] | None:
    if delta <= 0.0:
        return None
    raw = quantile_thresholds(ctx, name, delta)
    return {k: raw_to_real(v) for k, v in raw.items() if v}


def scnn_pair_count(
    ctx: ExperimentContext,
    name: str,
    thresholds: dict[str, float] | None,
    weight_sparsity: float = DEFAULT_WEIGHT_SPARSITY,
) -> int:
    """Network-total effectual (weight x activation) pairs, image 0.

    Accumulated channel-sum-wise in :func:`effectual_pair_count` — a
    different order than the SCNN timing model's per-output product maps
    — and persisted as its own artifact, so the cross-check against the
    model's ``mults`` counter stays an independent derivation even on a
    cache-warm assembly pass.
    """
    params = {
        "network": name,
        "thresholds": [list(item) for item in thresholds_key(thresholds)],
        "weight_sparsity": float(weight_sparsity),
    }
    payload = ctx.artifacts.load("scnn_pairs", **params)
    if payload is not None:
        return int(payload["pairs"])
    nctx = ctx.network_ctx(name)
    fwd = ctx.forward(name, 0, thresholds=thresholds)
    weights = ctx.pruned_conv_weights(name, weight_sparsity)
    pairs = sum(
        effectual_pair_count(work, weights[work.name])
        for work in conv_works_from_inputs(nctx.network, fwd.conv_inputs)
    )
    ctx.artifacts.store("scnn_pairs", {"pairs": pairs}, **params)
    return pairs


def run(ctx: ExperimentContext) -> ExperimentResult:
    backends = compared_backends()
    rows = []
    sums: dict[tuple[float, str], list[float]] = {}
    for name in ctx.config.networks:
        for delta in DELTAS:
            thresholds = _pruning_thresholds(ctx, name, delta)
            row: dict = {"network": name, "delta": delta}
            for backend in backends:
                speedup = ctx.backend_speedup(backend, name, thresholds)
                row[backend] = speedup
                sums.setdefault((delta, backend), []).append(speedup)
            if "cnv2" in row and "cnv" in row and row["cnv2"] < row["cnv"]:
                raise RuntimeError(
                    f"CNV2 slower than CNV on {name} at delta={delta}: "
                    f"{row['cnv2']:.4f} < {row['cnv']:.4f} — the offset-pair "
                    "intersection invariant is broken"
                )
            if "scnn" in row:
                timing = ctx.backend_timing("scnn", name, thresholds)
                mults = int(
                    sum(
                        layer.counters.counts.get("mults", 0.0)
                        for layer in timing.layers
                        if layer.kind == "conv"
                    )
                )
                pairs = scnn_pair_count(ctx, name, thresholds)
                if mults != pairs:
                    raise RuntimeError(
                        f"SCNN multiply count diverges from the analytic "
                        f"effectual-pair count on {name} at delta={delta}: "
                        f"{mults} != {pairs}"
                    )
                row["scnn_mults"] = mults
                row["scnn_pairs"] = pairs
            rows.append(row)
    for delta in DELTAS:
        summary: dict = {"network": "average", "delta": delta}
        for backend in backends:
            summary[backend] = float(np.mean(sums[(delta, backend)]))
        rows.append(summary)
    return ExperimentResult(
        experiment="fig9_backends",
        title="Speedup of every registered backend over the baseline",
        rows=rows,
        notes="delta = activation-pruning percentile knob (0.0 = no "
        "pruning); weight-sparse backends (cnv2, scnn) run at "
        f"{DEFAULT_WEIGHT_SPARSITY:.0%} magnitude-pruned weights; "
        "scnn_mults == scnn_pairs is the enforced Cartesian-product "
        "cross-check, and cnv2 >= cnv is asserted per row.",
    )

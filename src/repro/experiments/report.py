"""Experiment result containers and table formatting."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_table", "geometric_mean"]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (speedup-style ratios aggregate geometrically)."""
    if not values:
        raise ValueError("empty values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    )
    return f"{header}\n{rule}\n{body}"


@dataclass
class ExperimentResult:
    """The regenerated rows of one paper table/figure."""

    experiment: str  # e.g. "fig9"
    title: str
    rows: list[dict]
    notes: str = ""
    columns: list[str] | None = None
    extra: dict = field(default_factory=dict)

    def to_table(self) -> str:
        parts = [f"== {self.experiment}: {self.title} =="]
        parts.append(format_table(self.rows, self.columns))
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """Machine-readable form (rows + metadata) for downstream tooling."""

        def clean(value):
            if isinstance(value, float):
                return value if value == value else None  # NaN -> null
            return value

        payload = {
            "experiment": self.experiment,
            "title": self.title,
            "notes": self.notes,
            "rows": [
                {key: clean(value) for key, value in row.items()}
                for row in self.rows
            ],
        }
        return json.dumps(payload, indent=2)

"""Experiment result containers, table formatting, and result diffing."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

__all__ = [
    "ExperimentResult",
    "format_table",
    "geometric_mean",
    "results_to_json_doc",
    "diff_result_docs",
]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (speedup-style ratios aggregate geometrically)."""
    if not values:
        raise ValueError("empty values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    )
    return f"{header}\n{rule}\n{body}"


@dataclass
class ExperimentResult:
    """The regenerated rows of one paper table/figure."""

    experiment: str  # e.g. "fig9"
    title: str
    rows: list[dict]
    notes: str = ""
    columns: list[str] | None = None
    extra: dict = field(default_factory=dict)

    def to_table(self) -> str:
        parts = [f"== {self.experiment}: {self.title} =="]
        parts.append(format_table(self.rows, self.columns))
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """Machine-readable form (rows + metadata) for downstream tooling."""

        def clean(value):
            if isinstance(value, float):
                return value if value == value else None  # NaN -> null
            return value

        payload = {
            "experiment": self.experiment,
            "title": self.title,
            "notes": self.notes,
            "rows": [
                {key: clean(value) for key, value in row.items()}
                for row in self.rows
            ],
        }
        return json.dumps(payload, indent=2)


def results_to_json_doc(results: list[ExperimentResult]) -> str:
    """All results as one JSON array document (the ``--json`` format)."""
    return "[\n" + ",\n".join(result.to_json() for result in results) + "\n]\n"


def _cell_matches(expected, actual, rel_tol: float, abs_tol: float) -> bool:
    if isinstance(expected, float) or isinstance(actual, float):
        if expected is None or actual is None:  # to_json maps NaN -> null
            return expected is None and actual is None
        try:
            return math.isclose(
                float(expected), float(actual), rel_tol=rel_tol, abs_tol=abs_tol
            )
        except (TypeError, ValueError):
            return False
    return expected == actual


def diff_result_docs(
    expected: list[dict],
    actual: list[dict],
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> list[str]:
    """Human-readable mismatches between two parsed ``--json`` documents.

    Used by the golden regression test: numeric cells compare within
    tolerance (so a numpy upgrade's last-ulp noise doesn't fail the
    build), everything else compares exactly.  Returns [] when the
    documents agree.
    """
    problems: list[str] = []
    expected_ids = [doc.get("experiment") for doc in expected]
    actual_ids = [doc.get("experiment") for doc in actual]
    if expected_ids != actual_ids:
        return [f"experiment list changed: {expected_ids!r} -> {actual_ids!r}"]
    for exp_doc, act_doc in zip(expected, actual):
        name = exp_doc["experiment"]
        exp_rows, act_rows = exp_doc.get("rows", []), act_doc.get("rows", [])
        if len(exp_rows) != len(act_rows):
            problems.append(
                f"{name}: row count changed {len(exp_rows)} -> {len(act_rows)}"
            )
            continue
        for index, (exp_row, act_row) in enumerate(zip(exp_rows, act_rows)):
            if sorted(exp_row) != sorted(act_row):
                problems.append(
                    f"{name} row {index}: columns changed "
                    f"{sorted(exp_row)!r} -> {sorted(act_row)!r}"
                )
                continue
            for key, value in exp_row.items():
                if not _cell_matches(value, act_row[key], rel_tol, abs_tol):
                    problems.append(
                        f"{name} row {index} [{key}]: {value!r} -> {act_row[key]!r}"
                    )
    return problems

"""Experiment configuration: scales, image counts, cache location.

Three scales trade fidelity for runtime:

``full``
    The published input resolutions (227/224); what EXPERIMENTS.md reports.
``reduced``
    Half-resolution inputs (115/112) — same layer counts, filters and
    kernels, ~4x fewer windows.  The default for the benchmark harness.
``tiny``
    64-pixel inputs and a single image — smoke-test scale for CI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["PaperConfig", "SCALES", "default_cache_dir"]

SCALES = ("full", "reduced", "tiny")

_SCALE_SETTINGS = {
    # (input_size for 224-nets, input_size for alex, num_images)
    "full": (224, 227, 5),
    "reduced": (112, 115, 3),
    "tiny": (64, 67, 1),
}


def default_cache_dir() -> Path:
    """Where calibration shifts and timing summaries are cached."""
    env = os.environ.get("CNVLUTIN_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".cache"


@dataclass
class PaperConfig:
    """Knobs shared by all experiment modules."""

    scale: str = "reduced"
    seed: int = 7
    networks: list[str] = field(
        default_factory=lambda: ["alex", "google", "nin", "vgg19", "cnnM", "cnnS"]
    )
    num_images: int | None = None
    cache_dir: Path = field(default_factory=default_cache_dir)
    use_cache: bool = True
    #: Include the trained-small-CNN greedy search in fig14 (the costliest
    #: network-independent work unit; CI and the golden test disable it).
    smallcnn: bool = True

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise ValueError(f"scale must be one of {SCALES}")
        if self.num_images is None:
            self.num_images = _SCALE_SETTINGS[self.scale][2]

    def input_size(self, network_name: str) -> int:
        base, alex, _ = _SCALE_SETTINGS[self.scale]
        return alex if network_name == "alex" else base

    # ------------------------------------------------------------------
    # tiny JSON cache
    # ------------------------------------------------------------------
    def cache_key(self, kind: str, network_name: str) -> Path:
        return (
            self.cache_dir
            / f"{kind}_{network_name}_{self.scale}_s{self.seed}_n{self.num_images}.json"
        )

    def cache_load(self, kind: str, network_name: str):
        """Load a cached JSON payload, or None."""
        if not self.use_cache:
            return None
        path = self.cache_key(kind, network_name)
        if not path.exists():
            return None
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def cache_store(self, kind: str, network_name: str, payload) -> None:
        if not self.use_cache:
            return
        path = self.cache_key(kind, network_name)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle)

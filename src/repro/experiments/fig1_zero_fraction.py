"""Fig. 1 — average fraction of zero-valued conv-layer multiplication
operands per network, plus the Section II in-text position statistics.

Paper: 37% (nin) to 50% (cnnS), 44% mean, with tiny error bars across
inputs; no neuron position is zero across all inputs, and only 0.6% are
zero with >= 99% probability.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.report import ExperimentResult
from repro.nn.calibration import PAPER_ZERO_FRACTIONS

__all__ = ["run", "position_stats"]


def position_stats(ctx: ExperimentContext, name: str) -> dict[str, float]:
    """Per-position zero statistics across the sampled inputs.

    Returns the fraction of conv-input neuron positions that are zero on
    *every* sampled image and the fraction zero on at least all-but-one —
    the Section II argument that static elimination cannot work.  The
    computation (and its on-disk caching) lives on the context.
    """
    return ctx.position_stats(name)


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate Fig. 1's per-network bars (+ error bars)."""
    rows = []
    for name in ctx.config.networks:
        report = ctx.sparsity(name)
        rows.append(
            {
                "network": name,
                "zero_fraction": report.mac_weighted_mean,
                "std_across_images": report.std_across_images,
                "paper": PAPER_ZERO_FRACTIONS.get(name, float("nan")),
            }
        )
    mean = float(np.mean([r["zero_fraction"] for r in rows]))
    rows.append(
        {
            "network": "average",
            "zero_fraction": mean,
            "std_across_images": float("nan"),
            "paper": 0.44,
        }
    )
    stats = position_stats(ctx, ctx.config.networks[0])
    return ExperimentResult(
        experiment="fig1",
        title="Fraction of zero-valued conv-layer input neurons",
        rows=rows,
        notes=(
            f"position stats ({ctx.config.networks[0]}): "
            f"always-zero {stats['always_zero']:.4f} (paper: 0), "
            f"zero on >=all-but-one inputs {stats['near_always_zero']:.4f} "
            f"(paper: 0.006 at 99% prob.). The random-weight substitution "
            "trades positional zero diversity for the paper's clustering "
            "structure (see calibrate_network(per_channel=...))."
        ),
        extra={"position_stats": stats},
    )

"""The fetch-block broadcast interconnect.

DaDianNao broadcasts one 16-neuron fetch block per cycle to all 16 units
over a single wide interconnect; CNV keeps the structure but widens each
lane's slot to carry the 4-bit ZFNAf offset alongside the 16-bit neuron
(Section IV-B3, last paragraph).  The model counts broadcasts and bits
moved so the energy model can charge interconnect traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.counters import ActivityCounters

__all__ = ["BroadcastBus"]


@dataclass
class BroadcastBus:
    """A one-to-all-units broadcast bus of ``lanes`` neuron slots."""

    lanes: int
    data_bits: int = 16
    offset_bits: int = 0  # 0 for the baseline, 4 for CNV
    counters: ActivityCounters = field(default_factory=ActivityCounters)

    @property
    def width_bits(self) -> int:
        """Total bus width in bits."""
        return self.lanes * (self.data_bits + self.offset_bits)

    def broadcast(self, payload: list) -> list:
        """Deliver one fetch block (a list of at most ``lanes`` slots)."""
        if len(payload) > self.lanes:
            raise ValueError(
                f"payload of {len(payload)} slots exceeds bus width {self.lanes}"
            )
        self.counters.add("broadcasts")
        self.counters.add("broadcast_bits", self.width_bits)
        return payload

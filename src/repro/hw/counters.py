"""Activity counters: the bridge between timing simulation and energy.

Every simulator in this repo (structural and analytic, baseline and CNV)
reports its work through an :class:`ActivityCounters` instance.  The energy
model (:mod:`repro.power.energy`) multiplies these counts by calibrated
per-event energies; the Fig. 10 execution-activity breakdown is likewise
assembled from the lane-event counters defined here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["ActivityCounters", "LANE_EVENT_CATEGORIES"]

#: Lane-event categories of the paper's Fig. 10 breakdown (Section V-B):
#: each (unit, neuron-lane, cycle) triple is exactly one event.
LANE_EVENT_CATEGORIES = ("other", "conv1", "nonzero", "zero", "stall")


@dataclass
class ActivityCounters:
    """A bag of named activity counts.

    Canonical counter names used across the repo:

    ``cycles``              total cycles of the run
    ``mults``               multiplier activations (products computed)
    ``adds``                adder-tree input additions
    ``sb_reads``            synapse-buffer column reads (16 synapses each)
    ``nm_reads``            neuron-memory brick/fetch-block reads
    ``nm_writes``           neuron-memory brick writes
    ``nbin_reads`` / ``nbin_writes``    per-lane NBin accesses
    ``nbout_reads`` / ``nbout_writes``  partial-sum buffer accesses
    ``offset_reads``        ZFNAf offset-field reads (CNV only)
    ``encoder_cycles``      cycles spent by the output encoders
    ``broadcasts``          interconnect fetch-block broadcasts
    ``lane_<category>``     Fig. 10 lane events (see LANE_EVENT_CATEGORIES)
    """

    counts: Counter = field(default_factory=Counter)

    def add(self, name: str, amount: int | float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counts[name] += amount

    def add_lane_event(self, category: str, amount: int | float = 1) -> None:
        """Record Fig. 10 lane events of ``category``."""
        if category not in LANE_EVENT_CATEGORIES:
            raise ValueError(f"unknown lane event category {category!r}")
        self.counts[f"lane_{category}"] += amount

    def __getitem__(self, name: str) -> float:
        return self.counts.get(name, 0)

    def merge(self, other: "ActivityCounters") -> "ActivityCounters":
        """Accumulate another counter set into this one (returns self)."""
        self.counts.update(other.counts)
        return self

    def scaled(self, factor: float) -> "ActivityCounters":
        """A copy with every count multiplied by ``factor``."""
        out = ActivityCounters()
        for name, value in self.counts.items():
            out.counts[name] = value * factor
        return out

    def lane_events(self) -> dict[str, float]:
        """The Fig. 10 breakdown as ``{category: events}``."""
        return {
            category: self.counts.get(f"lane_{category}", 0)
            for category in LANE_EVENT_CATEGORIES
        }

    def total_lane_events(self) -> float:
        return sum(self.lane_events().values())

    def as_dict(self) -> dict[str, float]:
        return dict(self.counts)

    def publish(self, prefix: str) -> None:
        """Export every count as an ``<prefix>.<name>`` gauge in the
        process metrics registry (:mod:`repro.obs.metrics`).

        Gauges, not counters: an activity profile is a derived fact about
        a (workload, architecture) pair, so republishing it — from a
        cache hit, another worker, or the assembly pass — must be
        idempotent under snapshot merging.
        """
        from repro import obs

        for name, value in self.counts.items():
            obs.gauge_set(f"{prefix}.{name}", value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"ActivityCounters({body})"

"""Small SRAM buffers: NBin, NBout and the dispatcher's Brick Buffer.

NBin feeds neuron lanes (64 entries per CNV subunit, each a 16-bit value
plus a 4-bit offset field), NBout accumulates partial output neurons (64
entries per unit in CNV), and the Brick Buffer is the dispatcher's 16-entry
staging store, one entry per NM bank/neuron lane (Section IV-B3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.counters import ActivityCounters

__all__ = ["NeuronFifo", "PartialSumBuffer", "BrickBufferEntry"]


class NeuronFifo:
    """A bounded FIFO of (value, offset) pairs modelling one NBin lane."""

    def __init__(self, capacity: int, counters: ActivityCounters | None = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.counters = counters if counters is not None else ActivityCounters()
        self._items: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, value: float, offset: int = 0) -> None:
        """Write one encoded neuron into the buffer."""
        if self.full:
            raise OverflowError("NBin overflow")
        self.counters.add("nbin_writes")
        self._items.append((value, offset))

    def pop(self) -> tuple[float, int]:
        """Read the next encoded neuron (counts an nbin_read)."""
        if self.empty:
            raise IndexError("NBin underflow")
        self.counters.add("nbin_reads")
        return self._items.pop(0)


class PartialSumBuffer:
    """NBout: per-filter partial output-neuron accumulators.

    The unit back-end reduces ``neuron_lanes`` products per filter through
    an adder tree whose extra input is the partial sum read from NBout; the
    new sum is written back (Fig. 3 caption).  Accumulation happens at full
    precision, as in the hardware adder trees.
    """

    def __init__(self, entries: int, counters: ActivityCounters | None = None):
        self.entries = entries
        self.counters = counters if counters is not None else ActivityCounters()
        self._sums = np.zeros(entries, dtype=np.float64)

    def accumulate(self, index: int, value: float) -> None:
        """Read-modify-write one partial sum."""
        self.counters.add("nbout_reads")
        self.counters.add("nbout_writes")
        self._sums[index] += value

    def read(self, index: int) -> float:
        self.counters.add("nbout_reads")
        return float(self._sums[index])

    def drain(self) -> np.ndarray:
        """Read out all partial sums and clear (end-of-window writeback)."""
        self.counters.add("nbout_reads", self.entries)
        out = self._sums.copy()
        self._sums[:] = 0.0
        return out


@dataclass
class BrickBufferEntry:
    """One dispatcher Brick Buffer entry: the brick being drained to a lane.

    Holds the encoded (value, offset) pairs of one brick plus a drain
    cursor.  ``exhausted`` turns true once every non-zero neuron has been
    broadcast; an all-zero brick is exhausted after the single discard
    cycle the NM bank needed to supply it.
    """

    values: list[float] = field(default_factory=list)
    offsets: list[int] = field(default_factory=list)
    cursor: int = 0
    valid: bool = False

    def load(self, values: list[float], offsets: list[int]) -> None:
        self.values = [float(v) for v in values]
        self.offsets = [int(o) for o in offsets]
        self.cursor = 0
        self.valid = True

    @property
    def exhausted(self) -> bool:
        return not self.valid or self.cursor >= len(self.values)

    def next_pair(self) -> tuple[float, int] | None:
        """Pop the next (value, offset) pair, or None if drained/empty."""
        if self.exhausted:
            return None
        pair = (self.values[self.cursor], self.offsets[self.cursor])
        self.cursor += 1
        return pair

    def invalidate(self) -> None:
        self.valid = False
        self.values = []
        self.offsets = []
        self.cursor = 0

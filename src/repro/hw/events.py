"""A minimal synchronous cycle kernel for the structural simulators.

The accelerators here are fully synchronous designs: every component does
at most one thing per clock.  The kernel therefore steps registered
components once per cycle in registration order (producer -> consumer) and
stops when the supplied completion predicate holds.  It deliberately avoids
an event-queue abstraction — lock-step SIMD machines are clearer as a
straight cycle loop, and the cycle counts are what the paper measures.
"""

from __future__ import annotations

from typing import Callable, Protocol

__all__ = ["Clocked", "CycleKernel", "SimulationTimeout"]


class Clocked(Protocol):
    """Anything with a per-cycle ``tick``."""

    def tick(self, cycle: int) -> None: ...


class SimulationTimeout(RuntimeError):
    """The completion predicate never held within the cycle budget."""


class CycleKernel:
    """Steps a list of clocked components until ``done()`` holds.

    Components tick in the order given; within a cycle, earlier components
    act first (e.g. the dispatcher broadcasts before subunits consume).
    """

    def __init__(self, components: list[Clocked], max_cycles: int = 50_000_000):
        self.components = list(components)
        self.max_cycles = max_cycles
        self.cycle = 0

    def run_until(self, done: Callable[[], bool]) -> int:
        """Run cycles until ``done()``; returns the number of cycles taken."""
        start = self.cycle
        while not done():
            if self.cycle - start >= self.max_cycles:
                raise SimulationTimeout(
                    f"no completion within {self.max_cycles} cycles"
                )
            for component in self.components:
                component.tick(self.cycle)
            self.cycle += 1
        return self.cycle - start

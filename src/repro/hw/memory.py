"""Memory models: central eDRAM Neuron Memory, Synapse Buffers, SRAMs.

These are *structural* models used by the cycle-by-cycle simulators: they
hold data, enforce per-cycle port limits, and count accesses into
:class:`~repro.hw.counters.ActivityCounters`.  Capacities and widths follow
Section IV-A: a 4 MB central NM shared by all units (banked 16-way for CNV,
Section IV-B3), a 2 MB eDRAM SB per unit, and small SRAM NBin/NBout buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.counters import ActivityCounters

__all__ = ["NeuronMemory", "BankConflictError", "SynapseBuffer"]


class BankConflictError(RuntimeError):
    """Raised when a bank is asked for more than one access in a cycle."""


@dataclass
class NeuronMemory:
    """Banked central eDRAM holding inter-layer neuron arrays.

    The baseline makes one ``neuron_lanes``-wide fetch-block read per cycle.
    CNV statically distributes input-neuron slices one per bank and the
    dispatcher reads at most one brick per bank per cycle — the worst-case
    bandwidth discussed in Section IV-B3.  The model stores arbitrary python
    payloads (encoded bricks or raw neuron vectors) at integer addresses per
    bank and enforces the one-access-per-bank-per-cycle limit.
    """

    num_banks: int = 16
    counters: ActivityCounters = field(default_factory=ActivityCounters)

    def __post_init__(self) -> None:
        self._banks: list[dict[int, object]] = [dict() for _ in range(self.num_banks)]
        self._last_access_cycle: list[int] = [-1] * self.num_banks

    def store(self, bank: int, address: int, payload: object) -> None:
        """Backdoor store used to (pre)load a layer's activations."""
        self._banks[bank][address] = payload

    def read(self, bank: int, address: int, cycle: int) -> object:
        """Timed read: one access per bank per cycle, counted as nm_read."""
        if self._last_access_cycle[bank] == cycle:
            raise BankConflictError(
                f"NM bank {bank} accessed twice in cycle {cycle}"
            )
        self._last_access_cycle[bank] = cycle
        self.counters.add("nm_reads")
        return self._banks[bank][address]

    def write(self, bank: int, address: int, payload: object, cycle: int) -> None:
        """Timed write: shares the per-bank port with reads."""
        if self._last_access_cycle[bank] == cycle:
            raise BankConflictError(
                f"NM bank {bank} accessed twice in cycle {cycle}"
            )
        self._last_access_cycle[bank] = cycle
        self.counters.add("nm_writes")
        self._banks[bank][address] = payload

    def peek(self, bank: int, address: int) -> object:
        """Untimed read for validation/debug (no counting)."""
        return self._banks[bank][address]

    def entries(self, bank: int) -> int:
        return len(self._banks[bank])


@dataclass
class SynapseBuffer:
    """Per-(sub)unit synapse storage.

    Holds a 2-D array ``columns[column_index] -> vector of synapses`` (one
    synapse per filter lane).  In the baseline one SB column read per cycle
    supplies all 256 synapse lanes of a unit; in CNV each *subunit* owns a
    private SB slice (128 KB) and reads the column selected by the neuron's
    ZFNAf offset.  Reads are counted per column (16 synapses each), the
    granularity at which the paper reports SB dynamic-energy savings.
    """

    columns: np.ndarray  # shape (num_columns, synapses_per_column)
    counters: ActivityCounters = field(default_factory=ActivityCounters)

    def __post_init__(self) -> None:
        if self.columns.ndim != 2:
            raise ValueError("SB columns must be a 2-D array")

    @property
    def num_columns(self) -> int:
        return self.columns.shape[0]

    def read_column(self, index: int) -> np.ndarray:
        """Read one column (one synapse per filter lane)."""
        self.counters.add("sb_reads")
        return self.columns[index]

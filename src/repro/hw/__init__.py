"""Shared hardware substrate: memories, buffers, interconnect, cycle kernel.

These building blocks are used by both the DaDianNao baseline model
(:mod:`repro.baseline`) and the Cnvlutin model (:mod:`repro.core`); their
access counters feed the calibrated energy model (:mod:`repro.power`).
"""

from repro.hw.buffers import BrickBufferEntry, NeuronFifo, PartialSumBuffer
from repro.hw.config import PAPER_CONFIG, ArchConfig, small_config
from repro.hw.counters import LANE_EVENT_CATEGORIES, ActivityCounters
from repro.hw.events import CycleKernel, SimulationTimeout
from repro.hw.interconnect import BroadcastBus
from repro.hw.memory import BankConflictError, NeuronMemory, SynapseBuffer

__all__ = [
    "BrickBufferEntry",
    "NeuronFifo",
    "PartialSumBuffer",
    "PAPER_CONFIG",
    "ArchConfig",
    "small_config",
    "LANE_EVENT_CATEGORIES",
    "ActivityCounters",
    "CycleKernel",
    "SimulationTimeout",
    "BroadcastBus",
    "BankConflictError",
    "NeuronMemory",
    "SynapseBuffer",
]

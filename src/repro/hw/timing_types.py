"""Shared timing-result types for the baseline and CNV models.

Both accelerators report per-layer and whole-network results in the same
structures so the experiment harness can compute speedups, Fig. 10
activity breakdowns and energy numbers uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.counters import LANE_EVENT_CATEGORIES, ActivityCounters

__all__ = ["LayerTiming", "NetworkTiming"]


@dataclass
class LayerTiming:
    """Timing and activity of one layer on one accelerator.

    ``lane_events`` uses the paper's execution-activity metric
    (Section V-B): ``units x neuron_lanes x cycles`` events, each assigned
    to exactly one of other / conv1 / non-zero / zero / stall.
    """

    name: str
    kind: str
    cycles: int
    lane_events: dict[str, float]
    counters: ActivityCounters = field(default_factory=ActivityCounters)

    def __post_init__(self) -> None:
        for category in self.lane_events:
            if category not in LANE_EVENT_CATEGORIES:
                raise ValueError(f"unknown lane-event category {category!r}")


@dataclass
class NetworkTiming:
    """Aggregated timing of one network on one accelerator."""

    network: str
    architecture: str
    layers: list[LayerTiming]

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def conv_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers if layer.kind == "conv")

    def lane_events(self) -> dict[str, float]:
        """Merged Fig. 10 breakdown over all layers."""
        merged = {category: 0.0 for category in LANE_EVENT_CATEGORIES}
        for layer in self.layers:
            for category, events in layer.lane_events.items():
                merged[category] += events
        return merged

    def counters(self) -> ActivityCounters:
        """Merged activity counters over all layers."""
        merged = ActivityCounters()
        for layer in self.layers:
            merged.merge(layer.counters)
        merged.counts["cycles"] = self.total_cycles
        return merged

    def cycles_by_layer(self) -> dict[str, int]:
        return {layer.name: layer.cycles for layer in self.layers}

    def seconds(self, frequency_ghz: float) -> float:
        """Execution time at the given clock."""
        return self.total_cycles / (frequency_ghz * 1e9)

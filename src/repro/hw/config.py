"""Architecture configuration shared by the baseline and CNV models.

The paper's node (Section IV-A) has 16 units; each unit processes 16 input
neurons and 256 synapses from 16 filters per cycle.  All of these are
"design time parameters that could be changed", so they are configuration
here — the ablation benchmarks vary brick size and lane counts, and the
structural micro-simulator uses scaled-down configs for tractable
cycle-by-cycle runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ArchConfig", "PAPER_CONFIG", "small_config"]


@dataclass(frozen=True)
class ArchConfig:
    """Geometry and technology parameters of one accelerator node.

    Attributes
    ----------
    num_units:
        NFUs per node (16 in DaDianNao/CNV).
    neuron_lanes:
        Neuron lanes per unit; equals the number of CNV subunits per unit
        and the fetch-block / brick width in neurons.
    filters_per_unit:
        Filter lanes per unit; each neuron lane feeds this many synapse
        sublanes (16 x 16 = 256 multipliers per unit).
    brick_size:
        Neurons per ZFNAf brick.  The paper uses 16 (equal to
        ``neuron_lanes``), giving 4-bit offsets.
    data_bits:
        Neuron/synapse width in bits (16-bit fixed point).
    frequency_ghz:
        Clock frequency used to convert cycles to seconds (1 GHz).
    nm_mbytes, sb_mbytes_per_unit:
        Neuron Memory (4 MB central eDRAM) and per-unit Synapse Buffer
        capacity (2 MB x 16 units = 32 MB).
    nbin_entries:
        Depth of each (sub)unit NBin (64 entries, Section IV-B).
    offchip_gbytes_per_sec:
        Off-chip bandwidth for streaming synapses that exceed SB capacity.
        ``None`` models perfectly-overlapped prefetch (compute-bound FC
        layers), which matches the paper's conv-dominated activity
        breakdowns; see DESIGN.md.
    first_layer_encoded:
        CNV processes the first conv layer unencoded (raw 3-channel image);
        a per-layer software flag selects the mode (Section IV-B).  Kept
        for ablation.
    empty_brick_cycles:
        Cycles a CNV neuron lane spends on a brick with no non-zero
        neurons.  1 models the NM-bank one-brick-per-cycle supply limit
        (Section IV-B3); 0 models a free skip (ablation).
    fetch_packing:
        How the baseline packs a window into fetch blocks when the input
        depth is not a multiple of ``neuron_lanes`` (only conv1 and
        google's depth-24 layers in practice).  ``"window"`` (default)
        packs the whole (features, x, y) traversal densely — consistent
        with Section II's "time increases mostly linearly with the number
        of elements" and the paper's ~21% average conv1 runtime share.
        ``"row"`` restricts blocks to NM-contiguous window rows
        (``Fy * ceil(Fx*i/16)`` cycles), an ablation that makes shallow
        first layers costlier, toward google's 35% conv1 share.
    """

    num_units: int = 16
    neuron_lanes: int = 16
    filters_per_unit: int = 16
    brick_size: int = 16
    data_bits: int = 16
    frequency_ghz: float = 1.0
    nm_mbytes: float = 4.0
    sb_mbytes_per_unit: float = 2.0
    nbin_entries: int = 64
    offchip_gbytes_per_sec: float | None = None
    first_layer_encoded: bool = False
    empty_brick_cycles: int = 1
    fetch_packing: str = "window"

    def __post_init__(self) -> None:
        if self.num_units <= 0 or self.neuron_lanes <= 0 or self.filters_per_unit <= 0:
            raise ValueError("unit geometry must be positive")
        if self.brick_size <= 0:
            raise ValueError("brick_size must be positive")
        if self.empty_brick_cycles not in (0, 1):
            raise ValueError("empty_brick_cycles must be 0 or 1")
        if self.fetch_packing not in ("window", "row"):
            raise ValueError("fetch_packing must be 'window' or 'row'")

    @property
    def filters_per_pass(self) -> int:
        """Filters processed concurrently across the node (256 in the paper)."""
        return self.num_units * self.filters_per_unit

    @property
    def multipliers_per_unit(self) -> int:
        return self.neuron_lanes * self.filters_per_unit

    @property
    def offset_bits(self) -> int:
        """Bits needed for a ZFNAf offset within one brick."""
        return max(1, (self.brick_size - 1).bit_length())

    @property
    def neurons_per_cycle(self) -> int:
        """Neuron throughput of the whole node per cycle (all units share
        the broadcast fetch block, so this is units x lanes events but only
        ``neuron_lanes`` distinct neurons)."""
        return self.neuron_lanes

    @property
    def sb_bytes_total(self) -> float:
        return self.sb_mbytes_per_unit * self.num_units * 1024 * 1024

    def with_(self, **kwargs) -> "ArchConfig":
        """Functional update helper (``dataclasses.replace`` wrapper)."""
        return replace(self, **kwargs)


#: The configuration evaluated in the paper.
PAPER_CONFIG = ArchConfig()


def small_config(
    num_units: int = 2,
    neuron_lanes: int = 4,
    filters_per_unit: int = 2,
    brick_size: int = 4,
) -> ArchConfig:
    """A scaled-down config for structural cycle-by-cycle simulation/tests."""
    return ArchConfig(
        num_units=num_units,
        neuron_lanes=neuron_lanes,
        filters_per_unit=filters_per_unit,
        brick_size=brick_size,
        nbin_entries=8,
    )

"""Retry policy: attempt budgets, timeouts, deterministic backoff.

The backoff schedule is *deterministic and seedable*: the jitter for a
given (unit label, attempt) pair is derived from a SHA-256 of the policy
seed and those coordinates, not from global random state.  Two runs with
the same seed therefore sleep the same amounts in the same places, which
keeps chaos tests reproducible and lets a resumed run behave exactly
like the run it replaced.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy", "RespawnPolicy", "hash_fraction"]


def hash_fraction(*coordinates) -> float:
    """Deterministic pseudo-random fraction in [0, 1) for a coordinate tuple."""
    blob = "|".join(str(part) for part in coordinates).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner treats a work unit that fails, hangs, or crashes.

    max_attempts:
        Total tries per unit (1 = the old fail-fast behaviour).
    backoff_base / backoff_factor / backoff_max:
        Attempt ``n`` (0-based) that fails waits
        ``min(backoff_max, backoff_base * backoff_factor**n)`` seconds,
        scaled by jitter, before it is resubmitted.
    jitter:
        Fractional spread around the exponential delay: the actual sleep
        is ``delay * (1 + jitter * u)`` with ``u`` a deterministic value
        in [-1, 1) derived from (seed, unit label, attempt).
    unit_timeout:
        Wall-clock seconds one unit may run before its worker is
        presumed hung and killed (pool mode only; ``None`` disables).
        A chain of ``k`` units gets ``k * unit_timeout``.
    seed:
        Seeds the jitter (and nothing else).
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    unit_timeout: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValueError("unit_timeout must be positive (or None)")

    def delay(self, unit_label: str, attempt: int) -> float:
        """Seconds to wait before re-running ``unit_label``'s next attempt.

        Each call records a scheduled backoff in the process metrics
        registry (``retry.scheduled`` / ``retry.backoff_seconds``); the
        returned value itself stays fully deterministic.
        """
        from repro import obs

        base = min(self.backoff_max, self.backoff_base * self.backoff_factor**attempt)
        spread = 2.0 * hash_fraction(self.seed, unit_label, attempt) - 1.0
        value = max(0.0, base * (1.0 + self.jitter * spread))
        obs.counter_add("retry.scheduled")
        obs.counter_add("retry.backoff_seconds", value)
        return value

    def chain_timeout(self, num_units: int) -> float | None:
        """Wall-clock budget for a chain of ``num_units`` units."""
        if self.unit_timeout is None:
            return None
        return self.unit_timeout * max(1, num_units)

    def retries_left(self, attempt: int) -> bool:
        """May a unit whose 0-based ``attempt`` just failed try again?"""
        return attempt + 1 < self.max_attempts


@dataclass(frozen=True)
class RespawnPolicy:
    """How a supervisor treats a *process* (not a work unit) that dies.

    Retry governs one request's attempts; respawn governs bringing a
    crashed serving shard back.  The two compose: while a dead shard is
    being respawned, in-flight requests fail over to a live replica
    under :class:`RetryPolicy`, and the respawned process rejoins the
    hash ring once it answers a ping.

    max_respawns:
        How many times one slot (e.g. shard index) may be brought back
        over the supervisor's lifetime; a slot that exceeds it stays
        dead and its key range remains with the failover owners.
    backoff_base / backoff_factor / backoff_max / jitter / seed:
        Same deterministic schedule as :class:`RetryPolicy`, keyed on
        (seed, slot label, respawn index) so chaos runs sleep
        identically run to run.
    """

    max_respawns: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")

    def allows(self, respawn_index: int) -> bool:
        """May a slot be respawned for the ``respawn_index``-th time (0-based)?"""
        return respawn_index < self.max_respawns

    def delay(self, slot_label: str, respawn_index: int) -> float:
        """Seconds to wait before restarting ``slot_label``.

        Records ``respawn.scheduled`` / ``respawn.backoff_seconds`` in
        the metrics registry, mirroring :meth:`RetryPolicy.delay`.
        """
        from repro import obs

        base = min(
            self.backoff_max, self.backoff_base * self.backoff_factor**respawn_index
        )
        spread = 2.0 * hash_fraction(self.seed, slot_label, respawn_index) - 1.0
        value = max(0.0, base * (1.0 + self.jitter * spread))
        obs.counter_add("respawn.scheduled")
        obs.counter_add("respawn.backoff_seconds", value)
        return value

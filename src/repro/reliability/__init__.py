"""Fault tolerance for the experiment pipeline.

Two halves, used together by :mod:`repro.experiments.parallel` and
:mod:`repro.experiments.manifest`:

* :mod:`repro.reliability.policy` — :class:`RetryPolicy`: how many times
  a work unit is attempted, how long each attempt may run, and the
  deterministic exponential-backoff-with-jitter schedule between
  attempts.
* :mod:`repro.reliability.faults` — a deterministic, seedable
  fault-injection harness driven by the ``CNVLUTIN_FAULTS`` environment
  variable.  Production code calls :meth:`FaultInjector.fire` at named
  *sites* (``unit:fig9/nin``, ``cache:read``, ``pool:worker``); with no
  spec configured those calls are no-ops, and under a spec they raise,
  crash, delay, or corrupt on chosen trial indices so the chaos test
  suite can prove the pipeline converges anyway.
"""

from repro.reliability.faults import (
    FaultAction,
    FaultInjector,
    FaultRule,
    InjectedFault,
    parse_faults,
)
from repro.reliability.policy import RespawnPolicy, RetryPolicy

__all__ = [
    "RetryPolicy",
    "RespawnPolicy",
    "FaultAction",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "parse_faults",
]

"""Fault tolerance for the experiment pipeline.

Two halves, used together by :mod:`repro.experiments.parallel` and
:mod:`repro.experiments.manifest`:

* :mod:`repro.reliability.policy` — :class:`RetryPolicy`: how many times
  a work unit is attempted, how long each attempt may run, and the
  deterministic exponential-backoff-with-jitter schedule between
  attempts.
* :mod:`repro.reliability.faults` — a deterministic, seedable
  fault-injection harness driven by the ``CNVLUTIN_FAULTS`` environment
  variable.  Production code calls :meth:`FaultInjector.fire` at named
  *sites* (``unit:fig9/nin``, ``cache:read``, ``pool:worker``); with no
  spec configured those calls are no-ops, and under a spec they raise,
  crash, delay, or corrupt on chosen trial indices so the chaos test
  suite can prove the pipeline converges anyway.

A third half-sibling, :mod:`repro.reliability.integrity`, defends
against faults that *don't* crash anything: ABFT checksums over the
sparse kernels and the ``CNVLUTIN_INTEGRITY`` verification policy, the
detection side of the serving tier's silent-data-corruption loop
(detect → quarantine → republish → respawn).
"""

from repro.reliability.faults import (
    FaultAction,
    FaultInjector,
    FaultRule,
    InjectedFault,
    parse_faults,
)
from repro.reliability.integrity import (
    IntegrityError,
    resolve_recheck_s,
)
from repro.reliability.integrity import resolve_policy as resolve_integrity_policy
from repro.reliability.policy import RespawnPolicy, RetryPolicy

__all__ = [
    "RetryPolicy",
    "RespawnPolicy",
    "FaultAction",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "IntegrityError",
    "parse_faults",
    "resolve_integrity_policy",
    "resolve_recheck_s",
]

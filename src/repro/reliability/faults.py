"""Deterministic, seedable fault injection for the experiment pipeline.

The pipeline calls :meth:`FaultInjector.fire` at named *sites*; which
calls actually misbehave is controlled by the ``CNVLUTIN_FAULTS``
environment variable, so the chaos suite (and a CI job) can prove the
retry/resume machinery converges without touching production code paths.

Spec grammar (rules separated by ``;``)::

    CNVLUTIN_FAULTS = rule (";" rule)*
    rule            = site "=" action ("~" probability)? ("@" trials)?
    site            = "unit:" experiment "/" target
                    | "cache:read" | "cache:write" | "pool:worker"
                    | "serve:batch" | "shard:forward" | "shard:serve"
                    | "mem:weights" | "mem:activations"
    action          = "raise" | "crash" | "corrupt" | "delay:" seconds
    trials          = index ("," index)* | "*"

Examples::

    unit:fig9/nin=raise@0          first attempt of fig9 on nin raises
    pool:worker=crash@0            first chain any worker picks up dies
    cache:read=corrupt@1,3         2nd and 4th cache reads see a
                                   truncated object on disk
    unit:fig1/alex=delay:30@0      first attempt hangs for 30 s
    cache:read=raise~0.5@*         every read raises with probability .5
    shard:forward=raise@0          router's first forward to a shard
                                   fails, driving failover to a replica
    shard:serve=crash@5            the shard process serving the 6th
                                   sharded request hard-exits mid-run
    mem:weights=corrupt@3          the 4th sharded request flips one bit
                                   of the shared weight arena (a
                                   silent-data-corruption event every
                                   attached shard then computes on)
    mem:activations=corrupt@8      the 9th kernel call perturbs one
                                   element of its output before the
                                   ABFT checksum comparison sees it

Semantics:

* ``raise`` raises :class:`InjectedFault` at the site.
* ``crash`` hard-kills the current process via ``os._exit`` — the
  parent observes a ``BrokenProcessPool``, exactly like a segfaulting or
  OOM-killed worker.
* ``delay:<seconds>`` sleeps, which is how unit timeouts are exercised.
* ``corrupt`` is returned to the call site, which applies the damage
  itself: the artifact cache truncates the object file before reading
  it; ``mem:weights`` flips an exponent bit in the shared weight arena
  (:func:`repro.serve.shard._corrupt_arena`); ``mem:activations``
  perturbs one element of a kernel's output matrix in place
  (:mod:`repro.nn.sparse`) — each driving the real detect → quarantine
  → republish → respawn path end to end.
* ``@trials`` selects which *hits* of the site misbehave.  For ``unit:``
  sites the trial index is the unit's attempt number (so ``@0`` means
  "fail the first attempt, succeed on retry").  For ``cache:*`` and
  ``pool:worker`` sites it is a global hit counter; when
  ``CNVLUTIN_FAULT_STATE`` names a directory the counter is shared
  across processes through atomically-created marker files (required
  for multi-process runs — without it each worker counts from zero).
* ``~probability`` makes a rule fire with the given probability, decided
  deterministically from ``CNVLUTIN_FAULT_SEED`` and the (site, trial)
  coordinates — the same seed always injects the same faults.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.reliability.policy import hash_fraction

__all__ = [
    "InjectedFault",
    "FaultAction",
    "FaultRule",
    "FaultInjector",
    "parse_faults",
]

#: Environment variables the harness reads.
FAULTS_ENV = "CNVLUTIN_FAULTS"
STATE_ENV = "CNVLUTIN_FAULT_STATE"
SEED_ENV = "CNVLUTIN_FAULT_SEED"

_ACTIONS = ("raise", "crash", "corrupt", "delay")


class InjectedFault(RuntimeError):
    """The exception ``raise`` rules throw at their site."""


@dataclass(frozen=True)
class FaultAction:
    """What a rule does when it fires."""

    kind: str  # "raise" | "crash" | "corrupt" | "delay"
    seconds: float = 0.0  # delay only
    probability: float = 1.0


@dataclass(frozen=True)
class FaultRule:
    """One ``site=action@trials`` clause."""

    site: str
    action: FaultAction
    trials: frozenset[int] | None = frozenset({0})  # None = every trial

    def applies(self, trial: int) -> bool:
        return self.trials is None or trial in self.trials


def _parse_action(text: str, rule: str) -> FaultAction:
    probability = 1.0
    if "~" in text:
        text, _, prob_text = text.partition("~")
        try:
            probability = float(prob_text)
        except ValueError:
            raise ValueError(f"bad probability {prob_text!r} in fault rule {rule!r}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of [0,1] in fault rule {rule!r}")
    if text.startswith("delay:"):
        try:
            seconds = float(text[len("delay:"):])
        except ValueError:
            raise ValueError(f"bad delay in fault rule {rule!r}")
        if seconds < 0:
            raise ValueError(f"negative delay in fault rule {rule!r}")
        return FaultAction("delay", seconds=seconds, probability=probability)
    if text not in _ACTIONS or text == "delay":
        raise ValueError(
            f"unknown action {text!r} in fault rule {rule!r}; "
            f"choose from {_ACTIONS} (delay needs delay:<seconds>)"
        )
    return FaultAction(text, probability=probability)


def _parse_trials(text: str, rule: str) -> frozenset[int] | None:
    if text == "*":
        return None
    try:
        indices = frozenset(int(part) for part in text.split(","))
    except ValueError:
        raise ValueError(f"bad trial list {text!r} in fault rule {rule!r}")
    if any(index < 0 for index in indices):
        raise ValueError(f"negative trial index in fault rule {rule!r}")
    return indices


def parse_faults(spec: str) -> list[FaultRule]:
    """Parse a ``CNVLUTIN_FAULTS`` spec; raises ValueError on bad grammar."""
    rules: list[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(f"fault rule {clause!r} is missing '=action'")
        site, _, rest = clause.partition("=")
        site = site.strip()
        if not site:
            raise ValueError(f"fault rule {clause!r} has an empty site")
        rest = rest.strip()
        trials: frozenset[int] | None = frozenset({0})
        if "@" in rest:
            rest, _, trial_text = rest.partition("@")
            trials = _parse_trials(trial_text.strip(), clause)
        action = _parse_action(rest.strip(), clause)
        rules.append(FaultRule(site=site, action=action, trials=trials))
    return rules


@dataclass
class FaultInjector:
    """Evaluates fault rules at call sites; a no-op when no rules exist.

    Trial counting: each site with at least one rule gets its own
    monotonically increasing hit counter.  With ``state_dir`` set the
    counter is shared across processes (each hit atomically claims the
    next ``<site>.<n>`` marker file via ``O_CREAT|O_EXCL``); otherwise it
    is process-local.  Sites whose caller knows the trial index already
    (unit attempts) pass it explicitly and skip the counter.
    """

    rules: list[FaultRule] = field(default_factory=list)
    state_dir: Path | None = None
    seed: int = 0
    _local_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_env(cls, environ=None) -> "FaultInjector":
        environ = environ if environ is not None else os.environ
        spec = environ.get(FAULTS_ENV, "")
        if not spec.strip():
            return cls()
        state = environ.get(STATE_ENV)
        try:
            seed = int(environ.get(SEED_ENV, "0"))
        except ValueError:
            seed = 0
        return cls(
            rules=parse_faults(spec),
            state_dir=Path(state) if state else None,
            seed=seed,
        )

    @property
    def enabled(self) -> bool:
        return bool(self.rules)

    def _site_rules(self, site: str) -> list[FaultRule]:
        return [rule for rule in self.rules if rule.site == site]

    def _claim_trial(self, site: str) -> int:
        """The 0-based index of this hit of ``site``."""
        if self.state_dir is None:
            trial = self._local_counts.get(site, 0)
            self._local_counts[site] = trial + 1
            return trial
        slug = site.replace("/", "_").replace(":", "_")
        self.state_dir.mkdir(parents=True, exist_ok=True)
        trial = 0
        while True:
            marker = self.state_dir / f"{slug}.{trial}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                trial += 1
                continue
            os.close(fd)
            return trial

    def fire(self, site: str, trial: int | None = None) -> str | None:
        """Evaluate ``site``; misbehave if a rule matches.

        Returns the action kind that fired for actions the *call site*
        must apply (``corrupt``), ``None`` otherwise.  ``raise`` raises
        :class:`InjectedFault`, ``crash`` exits the process, ``delay``
        sleeps then returns ``"delay"``.
        """
        if not self.rules:
            return None
        matching = self._site_rules(site)
        if not matching:
            return None
        if trial is None:
            trial = self._claim_trial(site)
        for rule in matching:
            if not rule.applies(trial):
                continue
            action = rule.action
            if action.probability < 1.0:
                if hash_fraction(self.seed, site, trial) >= action.probability:
                    continue
            from repro import obs

            obs.counter_add("faults.injected")
            obs.counter_add(f"faults.injected.{site}")
            if action.kind == "raise":
                raise InjectedFault(f"injected fault at {site} (trial {trial})")
            if action.kind == "crash":
                os._exit(23)
            if action.kind == "delay":
                time.sleep(action.seconds)
                return "delay"
            return action.kind  # "corrupt": the call site applies it
        return None

"""Silent-data-corruption defense: ABFT checksums + integrity policy.

A flipped bit in the shared weight arena or a corrupted activation block
would be served to every user of a shard, silently — crash-restart
machinery never notices because nothing *crashes*.  This module supplies
the detection half of the defense; :mod:`repro.nn.shm` (CRC-guarded
arena) and :mod:`repro.serve.router` (quarantine → republish → respawn)
supply the healing half.

ABFT column checksums (Huang & Abraham)
---------------------------------------
For the conv GEMM ``product = cols @ wt`` the all-ones right checksum
gives the invariant::

    product @ 1  ==  cols @ (wt @ 1)

i.e. each output row's sum must equal the patch row dotted with the
weight matrix's row-sum vector.  The row-sum vector ``wt @ 1`` (and its
absolute companion, used for the tolerance bound) is computed once per
weight array and cached by ``id`` with a weakref finalizer — exactly the
:func:`repro.nn.sparse.transposed_weights` idiom — so the steady-state
verification cost is one ``(M, K)`` GEMV plus one ``(M, N)`` row sum per
GEMM: ``O(1/N + 1/K)`` of the GEMM itself.  The FC matvec invariant is
the transpose: ``sum(weights @ flat) == (1 @ weights) @ flat`` with the
column-sum vector cached per weight array, which as a side effect
detects in-place corruption of FC weights (the cached checksum no longer
matches the live array).

Verification is **read-only**: it compares freshly computed scalars
against the kernel's result and raises :class:`IntegrityError` on
mismatch, never touching the product buffer — so a verified run is
byte-identical to an unverified one, preserving every bit-identity
contract in the repo.

Tolerance
---------
``got`` and ``expected`` accumulate the same products in different
orders, so they differ by floating-point rounding.  The check bounds
that honestly per output row::

    |got_i - expected_i| <= SAFETY * eps * sqrt(K + N) * bound_i

where ``bound_i = |cols_i| . |wt @ 1|_abs`` is the magnitude sum of the
row's checksum terms (robust against cancellation, unlike any bound on
``|got_i|`` itself) and ``SAFETY`` leaves two orders of magnitude of
headroom over the ``~sqrt(K) * eps`` error of blocked/pairwise
accumulation.  A false positive would poison serving (the kernel raises
and the retry recomputes identically on clean data), so the bound is
deliberately loose; the price is that perturbations *below* it pass
undetected, which is the documented meaning of "within dtype tolerance".
:func:`detectable_weight_delta` / :func:`detectable_patch_delta` export
the resulting detectability threshold so the property suite can inject
perturbations provably above it.

Known blind spots, by construction:

* A single ones-checksum projects the error onto one direction: a patch
  perturbation at column ``k`` scales with ``(wt @ 1)[k]``, so if the
  weight row-sums cancel to ~0 at ``k`` the perturbation is invisible.
  (A second, weighted checksum would close this at twice the cost.)
* Corruption that precedes *both* sides of the invariant — e.g. a weight
  bit flipped before the GEMM *and* before the checksum GEMV — is
  self-consistent and passes.  That case is exactly what the CRC32
  guard on the shared arena manifest exists for (conv weights enter the
  GEMM through cached transposes, so call-time checksums can never see
  arena flips; the FC colsum cache does, as a bonus).

Policy (``CNVLUTIN_INTEGRITY``)
-------------------------------
``off`` (default), ``always``, or ``sample:p`` with ``p`` in [0, 1].
Sampling decisions are deterministic (``hash_fraction`` over a
process-global call counter), so a given process verifies the same
GEMMs run to run.  Junk values warn and fall back to ``off`` — the same
never-fail contract as ``CNVLUTIN_SPARSE_CUTOFF`` and
``CNVLUTIN_ENGINE_CACHE_MB``.  ``CNVLUTIN_INTEGRITY_RECHECK_S`` bounds
how stale a shard's arena CRC check may be between batches (0 =
re-verify before every reply; the chaos suite's zero-corrupted-responses
guarantee runs there).
"""

from __future__ import annotations

import itertools
import math
import os
import warnings
import weakref

import numpy as np

from repro import obs
from repro.reliability.policy import hash_fraction

__all__ = [
    "IntegrityError",
    "INTEGRITY_ENV",
    "RECHECK_ENV",
    "DEFAULT_RECHECK_S",
    "SAFETY",
    "resolve_policy",
    "resolve_recheck_s",
    "should_verify",
    "verify_gemm",
    "verify_matvec",
    "gemm_tolerance",
    "detectable_weight_delta",
    "detectable_patch_delta",
]

#: Environment variable selecting the verification policy.
INTEGRITY_ENV = "CNVLUTIN_INTEGRITY"

#: Environment variable bounding arena CRC staleness between batches.
RECHECK_ENV = "CNVLUTIN_INTEGRITY_RECHECK_S"

#: Default arena recheck deadline (seconds).  Chaos runs set 0 so every
#: reply re-verifies; production amortizes the CRC sweep.
DEFAULT_RECHECK_S = 5.0

#: Headroom multiplier of the rounding-error tolerance (module docstring).
SAFETY = 256.0

DEFAULT_POLICY = ("off", 0.0)


class IntegrityError(RuntimeError):
    """A checksum invariant failed: the data or the compute is corrupt."""


# ----------------------------------------------------------------------
# policy resolution (the CNVLUTIN_SPARSE_CUTOFF warn+default contract)
# ----------------------------------------------------------------------
_policy_memo: dict[str, tuple[str, float]] = {}


def _parse_policy(raw: str) -> tuple[str, float] | None:
    """``(mode, p)`` for a valid spec, ``None`` for junk."""
    text = raw.strip().lower()
    if text == "off":
        return ("off", 0.0)
    if text == "always":
        return ("always", 1.0)
    if text.startswith("sample:"):
        try:
            p = float(text[len("sample:"):])
        except ValueError:
            return None
        if not math.isfinite(p) or not 0.0 <= p <= 1.0:
            return None
        return ("sample", p)
    return None


def resolve_policy(value: str | None = None) -> tuple[str, float]:
    """The effective ``(mode, probability)`` verification policy.

    Explicit arguments raise on junk (a caller bug); the environment
    variable warns and falls back to ``off`` — a typo in the environment
    must never make a forward pass fail.  Parses are memoized per raw
    string so the per-GEMM cost is one dict lookup (and the warning
    fires once per junk value, not once per kernel call).
    """
    if value is not None:
        parsed = _parse_policy(value)
        if parsed is None:
            raise ValueError(
                f"integrity policy must be off|always|sample:p, got {value!r}"
            )
        return parsed
    raw = os.environ.get(INTEGRITY_ENV)
    if raw is None:
        return DEFAULT_POLICY
    cached = _policy_memo.get(raw)
    if cached is not None:
        return cached
    parsed = _parse_policy(raw)
    if parsed is None:
        warnings.warn(
            f"ignoring invalid {INTEGRITY_ENV}={raw!r} "
            f"(expected off|always|sample:p with p in [0, 1]); "
            f"integrity checking stays off",
            RuntimeWarning,
            stacklevel=3,
        )
        parsed = DEFAULT_POLICY
    _policy_memo[raw] = parsed
    return parsed


def resolve_recheck_s() -> float:
    """The arena recheck deadline from ``CNVLUTIN_INTEGRITY_RECHECK_S``.

    Junk (non-numeric, non-finite, negative) warns and falls back to
    :data:`DEFAULT_RECHECK_S`, mirroring :func:`resolve_policy`.
    """
    raw = os.environ.get(RECHECK_ENV)
    if raw is None:
        return DEFAULT_RECHECK_S
    try:
        seconds = float(raw)
    except ValueError:
        seconds = float("nan")
    if not math.isfinite(seconds) or seconds < 0.0:
        warnings.warn(
            f"ignoring invalid {RECHECK_ENV}={raw!r} "
            f"(expected seconds >= 0); using the default "
            f"{DEFAULT_RECHECK_S:g}",
            RuntimeWarning,
            stacklevel=3,
        )
        return DEFAULT_RECHECK_S
    return seconds


#: Process-global verification-decision counter: with ``sample:p`` the
#: n-th kernel call in a process always draws the same deterministic
#: fraction, so runs verify identical call sets.
_decision_counter = itertools.count()


def should_verify(policy: tuple[str, float] | None = None, seed: int = 0) -> bool:
    """Decide whether this kernel call verifies (deterministic sampling)."""
    mode, p = policy if policy is not None else resolve_policy()
    if mode == "off":
        return False
    if mode == "always":
        return True
    return hash_fraction(seed, "integrity.sample", next(_decision_counter)) < p


# ----------------------------------------------------------------------
# cached checksum vectors (the transposed_weights caching idiom)
# ----------------------------------------------------------------------
_checksum_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _checksums(weights: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """``(sum, abs-sum)`` of ``weights`` along ``axis``, cached per array.

    Weight arrays are replaced, not mutated (the repo-wide contract the
    transpose cache already relies on) — which makes a cached checksum a
    *detector* of in-place mutation rather than a victim of it: a bit
    flipped in the live array no longer matches its publish-time sums.
    """
    key = id(weights)
    entry = _checksum_cache.get(key)
    if entry is None:
        # float64 accumulation: a corrupted float32 weight can sit near
        # the dtype max, where a same-dtype abs-sum overflows to inf and
        # spews RuntimeWarnings from inside the check itself.
        entry = (
            weights.sum(axis=axis, dtype=np.float64),
            np.abs(weights).sum(axis=axis, dtype=np.float64),
        )
        try:
            weakref.finalize(weights, _checksum_cache.pop, key, None)
        except TypeError:
            return entry  # not weakref-able: hand back uncached
        _checksum_cache[key] = entry
    return entry


# ----------------------------------------------------------------------
# the checks
# ----------------------------------------------------------------------
def gemm_tolerance(cols: np.ndarray, wt: np.ndarray) -> np.ndarray:
    """Per-output-row tolerance of the GEMM checksum comparison.

    ``SAFETY * eps * sqrt(K + N)`` of each row's checksum magnitude
    bound ``|cols_i| . (|wt| @ 1)`` — see the module docstring.
    """
    _, abs_rowsum = _checksums(wt, axis=1)
    eps = float(np.finfo(np.result_type(cols, wt)).eps)
    scale = SAFETY * eps * math.sqrt(cols.shape[1] + wt.shape[1])
    return scale * (np.abs(cols) @ abs_rowsum)


def verify_gemm(
    cols: np.ndarray, wt: np.ndarray, product: np.ndarray, kind: str = "conv"
) -> None:
    """Check ``product @ 1 == cols @ (wt @ 1)`` within tolerance.

    Read-only; raises :class:`IntegrityError` on the first violating
    row.  NaN/Inf in the product always violate (comparisons with NaN
    are False, and the tolerance is finite).
    """
    obs.counter_add("integrity.checks.abft")
    rowsum, _ = _checksums(wt, axis=1)
    got = product.sum(axis=1, dtype=np.float64)
    expected = cols @ rowsum
    tolerance = gemm_tolerance(cols, wt)
    ok = np.abs(got - expected) <= tolerance
    if ok.all():
        return
    obs.counter_add("integrity.detected.abft")
    row = int(np.argmin(ok))
    raise IntegrityError(
        f"ABFT {kind} checksum mismatch at output row {row}: "
        f"row sum {got[row]!r} != checksum {expected[row]!r} "
        f"(tolerance {tolerance[row]:.3e})"
    )


def verify_matvec(
    weights: np.ndarray, flat: np.ndarray, product: np.ndarray
) -> None:
    """Check ``sum(weights @ flat) == (1 @ weights) . flat`` within tolerance."""
    obs.counter_add("integrity.checks.abft")
    colsum, abs_colsum = _checksums(weights, axis=0)
    got = float(product.sum(dtype=np.float64))
    expected = float(colsum @ flat)
    eps = float(np.finfo(np.result_type(weights, flat)).eps)
    bound = float(abs_colsum @ np.abs(flat))  # float64 via the checksums
    tolerance = SAFETY * eps * math.sqrt(flat.size + product.size) * bound
    if abs(got - expected) <= tolerance:
        return
    obs.counter_add("integrity.detected.abft")
    raise IntegrityError(
        f"ABFT fc checksum mismatch: output sum {got!r} != "
        f"checksum {expected!r} (tolerance {tolerance:.3e})"
    )


# ----------------------------------------------------------------------
# detectability thresholds (what the property suite injects above)
# ----------------------------------------------------------------------
def detectable_weight_delta(
    cols: np.ndarray, wt: np.ndarray, k: int, margin: float = 4.0
) -> float:
    """Smallest guaranteed-detected perturbation of one weight in row ``k``.

    A delta added to ``wt[k, n]`` (any ``n``) shifts row ``i``'s checksum
    by ``cols[i, k] * delta``; detection needs that shift to clear the
    row's tolerance at the row where ``|cols[:, k]|`` peaks.  Returns
    ``inf`` for a dead column (all-zero ``cols[:, k]`` never propagates).
    """
    column = np.abs(cols[:, k])
    row = int(np.argmax(column))
    if column[row] == 0.0:
        return float("inf")
    return margin * float(gemm_tolerance(cols, wt)[row]) / float(column[row])


def detectable_patch_delta(
    cols: np.ndarray, wt: np.ndarray, i: int, k: int, margin: float = 4.0
) -> float:
    """Smallest guaranteed-detected perturbation of patch entry ``(i, k)``.

    The shift scales with the weight row-sum at ``k``; when those sums
    cancel to ~0 the ones-checksum is blind there (module docstring) and
    this returns ``inf`` — callers skip such coordinates.
    """
    rowsum, abs_rowsum = _checksums(wt, axis=1)
    eps = float(np.finfo(np.result_type(cols, wt)).eps)
    scale = SAFETY * eps * math.sqrt(cols.shape[1] + wt.shape[1])
    # The perturbed patch also inflates its own row's tolerance by
    # scale * |abs_rowsum[k]| * delta; require the signal to clear both.
    signal_per_delta = abs(float(rowsum[k])) - scale * float(abs_rowsum[k])
    if signal_per_delta <= 0.0:
        return float("inf")
    blind = scale * float(abs_rowsum[k]) >= 0.5 * abs(float(rowsum[k]))
    if blind:
        return float("inf")
    return margin * float(gemm_tolerance(cols, wt)[i]) / signal_per_delta

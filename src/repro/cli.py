"""``cnvlutin-sim`` — simulate single layers or networks from the shell.

Two subcommands:

``layer``
    Simulate one synthetic conv layer on both architectures::

        cnvlutin-sim layer --depth 256 --size 14 --filters 256 \\
            --kernel 3 --pad 1 --sparsity 0.45

    With ``--structural`` (small layers only) the cycle-by-cycle node
    simulators run and are checked against the analytic models.  With
    ``--backends cnv,cnv2,scnn`` (or ``--backends all``) every named
    registry backend is timed on the same layer, weight-sparse backends
    at ``--weight-sparsity`` magnitude-pruned weights.

``network``
    Calibrate paper networks and print their per-layer baseline/CNV
    cycles; several networks compute in parallel with ``--jobs``::

        cnvlutin-sim network alex --scale reduced
        cnvlutin-sim network alex nin cnnS --jobs 3

Architecture knobs (``--units``, ``--lanes``, ``--filters-per-unit``,
``--brick-size``, ``--free-empty-bricks``) apply to both subcommands.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.backends import DEFAULT_WEIGHT_SPARSITY, backend_names, get_backend, prune_weights
from repro.baseline.timing import baseline_conv_timing
from repro.baseline.workload import ConvWork
from repro.core.timing import cnv_conv_timing
from repro.experiments.report import format_table
from repro.hw.config import PAPER_CONFIG, ArchConfig
from repro.nn.activations import sparse_activations
from repro.power.energy import energy_report

__all__ = ["main"]


def _arch_from_args(args) -> ArchConfig:
    return PAPER_CONFIG.with_(
        num_units=args.units,
        neuron_lanes=args.lanes,
        filters_per_unit=args.filters_per_unit,
        brick_size=args.brick_size,
        empty_brick_cycles=0 if args.free_empty_bricks else 1,
    )


def _add_arch_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--units", type=int, default=16)
    parser.add_argument("--lanes", type=int, default=16)
    parser.add_argument("--filters-per-unit", type=int, default=16)
    parser.add_argument("--brick-size", type=int, default=16)
    parser.add_argument("--free-empty-bricks", action="store_true")


def _run_layer(args) -> int:
    arch = _arch_from_args(args)
    rng = np.random.default_rng(args.seed)
    out = (args.size - args.kernel + 2 * args.pad) // args.stride + 1
    if out <= 0:
        print("error: non-positive output size", file=sys.stderr)
        return 2
    activations = sparse_activations(
        (args.depth, args.size, args.size), args.sparsity, rng
    )
    geometry = {
        "in_depth": args.depth, "in_y": args.size, "in_x": args.size,
        "num_filters": args.filters, "kernel": args.kernel,
        "stride": args.stride, "pad": args.pad, "groups": args.groups,
        "out_y": out, "out_x": out,
    }
    work = ConvWork("layer", geometry, activations, is_first=args.first_layer)

    base = baseline_conv_timing(work, arch)
    cnv = cnv_conv_timing(work, arch)
    print(f"layer: {args.depth}x{args.size}x{args.size} -> "
          f"{args.filters} filters {args.kernel}x{args.kernel} "
          f"(stride {args.stride}, pad {args.pad}, "
          f"{args.sparsity:.0%} zero neurons)")
    print(f"baseline cycles: {base.cycles}")
    print(f"cnv cycles:      {cnv.cycles}")
    print(f"speedup:         {base.cycles / cnv.cycles:.3f}x")
    events = cnv.lane_events
    total = sum(base.lane_events.values())
    for category, value in events.items():
        print(f"  cnv {category:8s} events: {value / total:.1%} of baseline")

    freq = arch.frequency_ghz
    base_e = energy_report(base.counters, base.cycles / (freq * 1e9), "dadiannao")
    cnv_e = energy_report(cnv.counters, cnv.cycles / (freq * 1e9), "cnvlutin")
    print(f"energy: baseline {base_e.total_j * 1e6:.2f} uJ, "
          f"cnv {cnv_e.total_j * 1e6:.2f} uJ "
          f"({base_e.total_j / cnv_e.total_j:.2f}x gain)")

    if args.backends:
        requested = (
            backend_names()
            if args.backends == "all"
            else [b.strip() for b in args.backends.split(",") if b.strip()]
        )
        try:
            specs = [get_backend(name) for name in requested]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        weights = prune_weights(
            rng.normal(size=(args.filters, args.depth // args.groups,
                             args.kernel, args.kernel)),
            args.weight_sparsity,
        )
        rows = []
        for spec in specs:
            timing = spec.layer_timing(
                work, arch, weights if spec.needs_weights else None
            )
            rows.append({
                "backend": spec.name,
                "architecture": spec.architecture,
                "cycles": timing.cycles,
                "speedup": (f"{base.cycles / timing.cycles:.3f}x"
                            if timing.cycles else "inf"),
                "mults": int(timing.counters.counts.get("mults", 0)),
            })
        print(f"\nbackend comparison "
              f"({args.weight_sparsity:.0%} weight sparsity):")
        print(format_table(rows))

    if args.structural:
        from repro.baseline.accelerator import DaDianNaoNode
        from repro.core.accelerator import CnvNode
        from repro.nn.layers import conv2d

        weights = rng.normal(size=(args.filters, args.depth // args.groups,
                                   args.kernel, args.kernel))
        golden = conv2d(activations, weights, stride=args.stride,
                        pad=args.pad, groups=args.groups)
        sbase = DaDianNaoNode(arch).run_conv_layer(work, weights)
        scnv = CnvNode(arch).run_conv_layer(work, weights)
        ok = (np.allclose(sbase.output, golden)
              and np.allclose(scnv.output, golden)
              and sbase.cycles == base.cycles
              and scnv.cycles == cnv.cycles)
        print(f"structural check: {'ok' if ok else 'MISMATCH'} "
              f"(outputs vs golden, cycles vs analytic)")
        if not ok:
            return 1
    return 0


def _run_network(args) -> int:
    from repro import obs
    from repro.experiments.config import PaperConfig
    from repro.experiments.context import ExperimentContext

    if args.trace:
        obs.enable_tracing()
    start = time.perf_counter()
    arch = _arch_from_args(args)
    names = args.name
    config = PaperConfig(scale=args.scale, networks=list(names))
    if args.jobs > 1 and len(names) > 1:
        # Warm the shared artifact cache with one timing unit per network
        # on a process pool; the serial printing loop below then only
        # reads cached timing summaries.
        from repro.experiments.parallel import WorkUnit, execute_units
        from repro.reliability import RetryPolicy

        policy = RetryPolicy(
            max_attempts=args.retries + 1, unit_timeout=args.unit_timeout
        )
        units = [WorkUnit("timings", name, kind="timings") for name in names]
        execute_units(config, units, jobs=args.jobs, arch=arch, policy=policy)
    ctx = ExperimentContext(config, arch=arch)
    for name in names:
        base = ctx.baseline_timing(name)
        cnv = ctx.cnv_timing(name)
        cnv_by = cnv.cycles_by_layer()
        rows = []
        for layer in base.layers:
            cnv_c = cnv_by.get(layer.name, layer.cycles)
            rows.append({
                "layer": layer.name,
                "kind": layer.kind,
                "baseline": layer.cycles,
                "cnv": cnv_c,
                "speedup": layer.cycles / cnv_c if cnv_c else float("inf"),
            })
        print(format_table(rows))
        print(f"\ntotal speedup: {base.total_cycles / cnv.total_cycles:.3f}x "
              f"({name} @ {args.scale} scale)")
        if name != names[-1]:
            print()
    if args.metrics:
        from repro.obs.report import metrics_report

        print()
        print(metrics_report({
            "version": 4,
            "scale": args.scale,
            "jobs": args.jobs,
            "wall_seconds": time.perf_counter() - start,
            "units": [],
            "cache": ctx.artifacts.counters(),
            "metrics": obs.get_metrics().snapshot(),
        }))
    if args.trace:
        written = obs.write_chrome_trace(args.trace)
        print(f"\nwrote trace {args.trace} ({written} events)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="cnvlutin-sim", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    layer = sub.add_parser("layer", help="simulate one synthetic conv layer")
    layer.add_argument("--depth", type=int, default=256)
    layer.add_argument("--size", type=int, default=14)
    layer.add_argument("--filters", type=int, default=256)
    layer.add_argument("--kernel", type=int, default=3)
    layer.add_argument("--stride", type=int, default=1)
    layer.add_argument("--pad", type=int, default=1)
    layer.add_argument("--groups", type=int, default=1)
    layer.add_argument("--sparsity", type=float, default=0.44)
    layer.add_argument("--seed", type=int, default=0)
    layer.add_argument("--first-layer", action="store_true")
    layer.add_argument("--structural", action="store_true",
                       help="also run the cycle-by-cycle node simulators")
    layer.add_argument(
        "--backends", default=None, metavar="NAMES",
        help="comma-separated registry backends to compare on this layer "
        "(or 'all'); see repro.backends",
    )
    layer.add_argument(
        "--weight-sparsity", type=float, default=DEFAULT_WEIGHT_SPARSITY,
        help="magnitude-pruned weight fraction for weight-sparse backends "
        f"(default {DEFAULT_WEIGHT_SPARSITY})",
    )
    _add_arch_args(layer)
    layer.set_defaults(func=_run_layer)

    network = sub.add_parser("network", help="per-layer timing of paper networks")
    network.add_argument(
        "name", nargs="+",
        choices=["alex", "google", "nin", "vgg19", "cnnM", "cnnS"],
    )
    network.add_argument("--scale", default="reduced", choices=["tiny", "reduced", "full"])
    network.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes to compute several networks' timings in parallel",
    )
    network.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per failed timing unit (with --jobs > 1)",
    )
    network.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per timing unit before its worker is killed",
    )
    network.add_argument(
        "--trace", default=None, metavar="TRACE_JSON",
        help="record spans and write a Chrome trace-event file "
        "(open in Perfetto or chrome://tracing)",
    )
    network.add_argument(
        "--metrics", action="store_true",
        help="print the observability report (per-layer compute, cache "
        "hit rates) after the timings",
    )
    _add_arch_args(network)
    network.set_defaults(func=_run_network)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Service-level objectives over the metrics namespace.

Declares what "healthy" means for the serving tier — latency quantile
targets and error/shed rate ceilings — and evaluates them against any
metrics snapshot (live telemetry window, cumulative totals, or a saved
manifest).  Every evaluation is recorded back into the metrics
namespace so SLO state travels with the run:

* ``slo.<name>.value`` / ``slo.<name>.target`` — observed vs declared;
* ``slo.<name>.burn_rate`` — how fast the error budget is being spent:
  1.0 means exactly at budget, 2.0 means burning twice the allowance
  (for a latency objective the budget is the allowed violation
  fraction, e.g. p99 ≤ T allows 1% of requests above T; for a rate
  objective it is the declared ceiling itself);
* ``slo.<name>.breaches`` — a counter bumped once per evaluation that
  found the objective out of budget.

Latency objectives read the histogram quantile sketch
(:class:`~repro.obs.metrics.Histogram`), and compute the violating
fraction from the same buckets — the partially-violating boundary
bucket counts as violating, so burn rates err pessimistic by at most
one ~9% bucket step.  ``repro-obs report`` renders the ``slo.*``
section from the recorded gauges alone, so reports over old manifests
simply omit it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import Histogram, MetricsRegistry, sketch_boundary

__all__ = [
    "LatencyObjective",
    "RateObjective",
    "SloStatus",
    "SloTracker",
    "default_serving_objectives",
    "parse_slo_spec",
    "violating_fraction",
]


@dataclass(frozen=True)
class LatencyObjective:
    """``quantile`` of ``histogram`` must stay at or below ``threshold``."""

    name: str
    histogram: str
    quantile: float
    threshold: float

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 100.0:
            raise ValueError("quantile must be in (0, 100)")
        if self.threshold <= 0.0:
            raise ValueError("threshold must be positive")


@dataclass(frozen=True)
class RateObjective:
    """``numerator / denominator`` must stay at or below ``target``."""

    name: str
    numerator: str
    denominator: str
    target: float

    def __post_init__(self) -> None:
        if not 0.0 < self.target <= 1.0:
            raise ValueError("target must be in (0, 1]")


@dataclass(frozen=True)
class SloStatus:
    name: str
    kind: str  # "latency" | "rate"
    value: float
    target: float
    burn_rate: float
    healthy: bool
    observed: float  # observations the verdict is based on

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "value": round(self.value, 4),
            "target": self.target,
            "burn_rate": round(self.burn_rate, 3),
            "healthy": self.healthy,
            "observed": self.observed,
        }


def violating_fraction(payload: dict, threshold: float) -> float:
    """Fraction of sketched observations above ``threshold``.

    A bucket straddling the threshold counts as violating in full
    (pessimistic by at most one bucket's population).  Sketchless
    payloads fall back on the recorded max: 0.0 when ``max`` honours
    the threshold, else unknown-but-nonzero, reported as 1.0 so the
    breach is visible rather than silently absorbed.
    """
    count = int(payload.get("count", 0))
    if count <= 0:
        return 0.0
    buckets = payload.get("buckets") or {}
    population = 0
    violating = 0
    for key, bucket_count in buckets.items():
        try:
            index = int(key)
            bucket_count = int(bucket_count)
        except (TypeError, ValueError):
            continue
        population += bucket_count
        if sketch_boundary(index) > threshold:
            violating += bucket_count
    if population == 0:
        return 0.0 if float(payload.get("max", 0.0)) <= threshold else 1.0
    return violating / population


class SloTracker:
    """Evaluates declared objectives against metrics snapshots."""

    def __init__(
        self,
        objectives: list[LatencyObjective | RateObjective],
    ) -> None:
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.objectives = list(objectives)

    def evaluate(self, snapshot: dict) -> list[SloStatus]:
        counters = snapshot.get("counters", {})
        histograms = snapshot.get("histograms", {})
        statuses: list[SloStatus] = []
        for objective in self.objectives:
            if isinstance(objective, LatencyObjective):
                payload = histograms.get(objective.histogram, {})
                histogram = Histogram.from_dict(payload)
                value = histogram.quantile(objective.quantile)
                allowed = 1.0 - objective.quantile / 100.0
                burn = (
                    violating_fraction(payload, objective.threshold) / allowed
                )
                statuses.append(
                    SloStatus(
                        name=objective.name,
                        kind="latency",
                        value=value,
                        target=objective.threshold,
                        burn_rate=burn,
                        healthy=burn <= 1.0,
                        observed=histogram.count,
                    )
                )
            else:
                denominator = float(counters.get(objective.denominator, 0.0))
                numerator = float(counters.get(objective.numerator, 0.0))
                value = numerator / denominator if denominator else 0.0
                statuses.append(
                    SloStatus(
                        name=objective.name,
                        kind="rate",
                        value=value,
                        target=objective.target,
                        burn_rate=value / objective.target,
                        healthy=value <= objective.target,
                        observed=denominator,
                    )
                )
        return statuses

    def record(
        self, snapshot: dict, registry: MetricsRegistry
    ) -> list[SloStatus]:
        """Evaluate and write the ``slo.*`` gauges/counters back."""
        statuses = self.evaluate(snapshot)
        for status in statuses:
            prefix = f"slo.{status.name}"
            registry.gauge_set(f"{prefix}.value", round(status.value, 4))
            registry.gauge_set(f"{prefix}.target", status.target)
            registry.gauge_set(
                f"{prefix}.burn_rate", round(status.burn_rate, 3)
            )
            if not status.healthy:
                registry.counter_add(f"{prefix}.breaches")
        return statuses


def default_serving_objectives(
    latency_p99_ms: float = 500.0,
    error_rate: float = 0.01,
    shed_rate: float = 0.05,
) -> list[LatencyObjective | RateObjective]:
    """The stock serving-tier SLOs (overridable via ``--slo``)."""
    return [
        LatencyObjective(
            name="latency_p99_ms",
            histogram="serve.latency_ms",
            quantile=99.0,
            threshold=latency_p99_ms,
        ),
        RateObjective(
            name="error_rate",
            numerator="serve.errors",
            denominator="serve.requests",
            target=error_rate,
        ),
        RateObjective(
            name="shed_rate",
            numerator="serve.shed",
            denominator="serve.requests",
            target=shed_rate,
        ),
    ]


def parse_slo_spec(spec: str) -> list[LatencyObjective | RateObjective]:
    """Objectives from a ``--slo`` string.

    Comma-separated ``key=value`` pairs over the stock serving
    objectives: ``latency_p99_ms=250,error_rate=0.001,shed_rate=0.02``.
    """
    overrides: dict[str, float] = {}
    for field in spec.split(","):
        field = field.strip()
        if not field:
            continue
        key, sep, raw = field.partition("=")
        key = key.strip()
        if not sep or key not in (
            "latency_p99_ms", "error_rate", "shed_rate",
        ):
            raise ValueError(
                f"bad --slo field {field!r} (want "
                f"latency_p99_ms=<ms>, error_rate=<frac>, shed_rate=<frac>)"
            )
        try:
            overrides[key] = float(raw)
        except ValueError:
            raise ValueError(f"bad --slo value {raw!r} for {key}") from None
    return default_serving_objectives(**overrides)

"""Prometheus text exposition for metrics snapshots.

Renders any :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` payload
(or several, distinguished by label sets — e.g. one series per shard)
as Prometheus text-format 0.0.4, the ``/metrics`` lingua franca:

* counters → ``<ns>_<name>_total`` with ``# TYPE ... counter``;
* gauges → ``<ns>_<name>`` with ``# TYPE ... gauge``;
* histograms → the full Prometheus histogram family:
  ``_bucket{le="..."}`` lines with *cumulative* counts on the sketch's
  fixed log boundaries, a ``+Inf`` bucket, plus ``_sum`` and
  ``_count`` — so a Prometheus server can compute
  ``histogram_quantile()`` over exactly the same buckets
  :meth:`~repro.obs.metrics.Histogram.quantile` uses locally.

Dotted metric names sanitize to the ``[a-zA-Z_:][a-zA-Z0-9_:]*``
charset (dots and dashes become underscores).  :func:`validate_exposition`
is the companion lint: it re-parses rendered text (or anything an
external exporter claims is exposition format) and returns a list of
problems — unknown line shapes, samples with no preceding ``# TYPE``,
histogram families missing a ``+Inf`` bucket or with non-monotonic
cumulative bucket counts.  CI runs it over the admin endpoint's output.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import sketch_boundary

__all__ = [
    "sanitize_metric_name",
    "render_prometheus",
    "validate_exposition",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def sanitize_metric_name(name: str) -> str:
    """Dots, dashes, and anything else illegal become underscores."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: dict | None, extra: dict | None = None) -> str:
    merged = dict(labels or {})
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{str(val)}"' for key, val in sorted(merged.items())
    )
    return "{" + body + "}"


def render_prometheus(
    series: list[tuple[dict, dict]] | dict,
    namespace: str = "cnvlutin",
) -> str:
    """Prometheus text exposition of one or several labelled snapshots.

    ``series`` is either a single snapshot dict, or a list of
    ``(labels, snapshot)`` pairs — one TYPE declaration per metric
    family, one sample line per (labels, metric).
    """
    if isinstance(series, dict):
        series = [({}, series)]
    counter_rows: dict[str, list[str]] = {}
    gauge_rows: dict[str, list[str]] = {}
    histogram_rows: dict[str, list[str]] = {}

    for labels, snapshot in series:
        for name, value in sorted(snapshot.get("counters", {}).items()):
            family = f"{namespace}_{sanitize_metric_name(name)}_total"
            counter_rows.setdefault(family, []).append(
                f"{family}{_format_labels(labels)} {_format_value(value)}"
            )
        for name, value in sorted(snapshot.get("gauges", {}).items()):
            family = f"{namespace}_{sanitize_metric_name(name)}"
            gauge_rows.setdefault(family, []).append(
                f"{family}{_format_labels(labels)} {_format_value(value)}"
            )
        for name, payload in sorted(snapshot.get("histograms", {}).items()):
            family = f"{namespace}_{sanitize_metric_name(name)}"
            rows = histogram_rows.setdefault(family, [])
            count = int(payload.get("count", 0))
            buckets = payload.get("buckets") or {}
            indexed: list[tuple[int, int]] = []
            for key, bucket_count in buckets.items():
                try:
                    indexed.append((int(key), int(bucket_count)))
                except (TypeError, ValueError):
                    continue
            indexed.sort()
            cumulative = 0
            for index, bucket_count in indexed:
                cumulative += bucket_count
                rows.append(
                    f"{family}_bucket"
                    f"{_format_labels(labels, {'le': _format_value(sketch_boundary(index))})}"
                    f" {cumulative}"
                )
            rows.append(
                f"{family}_bucket{_format_labels(labels, {'le': '+Inf'})} "
                f"{count}"
            )
            rows.append(
                f"{family}_sum{_format_labels(labels)} "
                f"{_format_value(payload.get('total', 0.0))}"
            )
            rows.append(f"{family}_count{_format_labels(labels)} {count}")

    lines: list[str] = []
    for family in sorted(counter_rows):
        lines.append(f"# TYPE {family} counter")
        lines.extend(counter_rows[family])
    for family in sorted(gauge_rows):
        lines.append(f"# TYPE {family} gauge")
        lines.extend(gauge_rows[family])
    for family in sorted(histogram_rows):
        lines.append(f"# TYPE {family} histogram")
        lines.extend(histogram_rows[family])
    return "\n".join(lines) + "\n"


def _parse_le(labels_text: str) -> str | None:
    for part in labels_text.strip("{}").split(","):
        if part.startswith('le="') and part.endswith('"'):
            return part[4:-1]
    return None


def validate_exposition(text: str) -> list[str]:
    """Problems (empty list = valid) with Prometheus exposition text."""
    problems: list[str] = []
    types: dict[str, str] = {}
    # family -> labels-without-le -> list of (le, cumulative count)
    hist_buckets: dict[str, dict[str, list[tuple[float, float]]]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split()
            if len(fields) >= 2 and fields[1] not in ("TYPE", "HELP"):
                problems.append(
                    f"line {lineno}: unknown comment keyword {fields[1]!r}"
                )
            elif fields[1] == "TYPE":
                if len(fields) != 4 or fields[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped",
                ):
                    problems.append(f"line {lineno}: malformed TYPE line")
                elif not _NAME_OK.match(fields[2]):
                    problems.append(
                        f"line {lineno}: bad metric name {fields[2]!r}"
                    )
                else:
                    types[fields[2]] = fields[3]
            continue
        match = _SAMPLE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels_text = match.group("labels") or ""
        if labels_text:
            body = labels_text[1:-1]
            for part in body.split(","):
                if part and not _LABEL.match(part.strip()):
                    problems.append(
                        f"line {lineno}: malformed label {part!r}"
                    )
        raw_value = match.group("value")
        if raw_value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(raw_value)
            except ValueError:
                problems.append(
                    f"line {lineno}: non-numeric value {raw_value!r}"
                )
                continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in types:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
            continue
        if types.get(family) == "histogram" and name == family + "_bucket":
            le = _parse_le(labels_text)
            if le is None:
                problems.append(
                    f"line {lineno}: histogram bucket without le label"
                )
                continue
            bound = float("inf") if le == "+Inf" else float(le)
            other = ",".join(
                part for part in labels_text.strip("{}").split(",")
                if part and not part.startswith('le="')
            )
            hist_buckets.setdefault(family, {}).setdefault(other, []).append(
                (bound, float(raw_value))
            )

    for family, by_labels in hist_buckets.items():
        for labels, rows in by_labels.items():
            where = f"{family}{{{labels}}}" if labels else family
            if not any(math.isinf(bound) for bound, _ in rows):
                problems.append(f"{where}: histogram has no +Inf bucket")
            ordered = sorted(rows)
            counts = [count for _, count in ordered]
            if any(b < a for a, b in zip(counts, counts[1:])):
                problems.append(
                    f"{where}: cumulative bucket counts are not "
                    f"monotonically non-decreasing"
                )
    return problems

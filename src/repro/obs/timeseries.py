"""Windowed telemetry time series: per-source rolling metric windows.

The aggregation half of the live telemetry plane.  Metric *deltas* —
:func:`repro.obs.take_snapshot` payloads, which are deltas by
construction because the snapshot resets the registry — stream in from
several sources (shard processes pushing over their control sockets, or
a local sampler diffing the in-process registry) and land in a
:class:`TelemetryPlane`:

* **per-source cumulative** registries (one
  :class:`~repro.obs.metrics.MetricsRegistry` per source, so "p99 on
  shard 3 right now" is one histogram-quantile read);
* a **ring buffer** of timestamped deltas, merged on demand into a
  rolling *window* snapshot (throughput and quantiles over the last N
  seconds rather than since boot);
* **high-watermark gauges**: the maximum every gauge ever stated,
  tracked across all deltas (``serve.queue_depth`` may read 0 at every
  scrape while having spiked to the queue limit between them).

Ordering is last-write-wins per source: each delta may carry a ``seq``
number, and a delta at or below the last ingested ``seq`` for its
source is dropped (a retransmitted or reordered push never double
counts).  Ingestion never touches request bytes or the serving hot
path — the plane is fed entirely from control-socket envelopes and
sampler ticks.

:func:`snapshot_delta` is the local-sampler companion: given two
*cumulative* snapshots of the same registry it returns the delta
payload between them (counters and sketch buckets subtract exactly;
gauges restate; min/max degrade to the cumulative extremes, which is
the documented approximation for locally sampled windows).
"""

from __future__ import annotations

import time
from collections import deque

from repro.obs.metrics import MetricsRegistry

__all__ = ["TelemetryPlane", "snapshot_delta"]


def snapshot_delta(previous: dict, current: dict) -> dict:
    """Delta payload between two cumulative snapshots of one registry.

    Counters and histogram counts/totals/buckets subtract (they are
    monotonic within a process); gauges carry the current statement.
    Histogram ``min``/``max`` cannot be recovered for the interval, so
    the cumulative extremes stand in — windows built from locally
    sampled deltas have exact counts, totals, and quantile buckets, and
    conservative (whole-run) extremes.
    """
    prev_counters = previous.get("counters", {})
    delta_counters = {}
    for name, value in current.get("counters", {}).items():
        moved = value - prev_counters.get(name, 0.0)
        if moved:
            delta_counters[name] = moved
    prev_histograms = previous.get("histograms", {})
    delta_histograms = {}
    for name, payload in current.get("histograms", {}).items():
        before = prev_histograms.get(name, {})
        moved = int(payload.get("count", 0)) - int(before.get("count", 0))
        if moved <= 0:
            continue
        prev_buckets = before.get("buckets") or {}
        buckets = {}
        for key, count in (payload.get("buckets") or {}).items():
            grew = int(count) - int(prev_buckets.get(key, 0))
            if grew > 0:
                buckets[key] = grew
        delta_histograms[name] = {
            "count": moved,
            "total": (
                float(payload.get("total", 0.0))
                - float(before.get("total", 0.0))
            ),
            "min": payload.get("min", 0.0),
            "max": payload.get("max", 0.0),
            "buckets": buckets,
        }
    return {
        "pid": current.get("pid"),
        "counters": delta_counters,
        "gauges": dict(current.get("gauges", {})),
        "histograms": delta_histograms,
    }


class TelemetryPlane:
    """Rolling multi-source aggregation of streamed metric deltas."""

    def __init__(
        self,
        window_s: float = 60.0,
        max_points: int = 512,
        clock=time.monotonic,
    ):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self._clock = clock
        self._ring: deque = deque(maxlen=max_points)
        self._cumulative: dict[str, MetricsRegistry] = {}
        self._seq: dict[str, int] = {}
        self._last_seen: dict[str, float] = {}
        self._local: set[str] = set()
        self._watermarks: dict[str, float] = {}
        self.ingested = 0
        self.dropped_stale = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        source: str,
        delta: dict,
        seq: int | None = None,
        local: bool = False,
    ) -> bool:
        """Fold one delta from ``source`` in.  Returns False (and counts
        ``dropped_stale``) when ``seq`` is at or below the source's last
        ingested sequence number — last write wins per source."""
        if not delta:
            return False
        if seq is not None:
            if seq <= self._seq.get(source, -1):
                self.dropped_stale += 1
                return False
            self._seq[source] = seq
        registry = self._cumulative.get(source)
        if registry is None:
            registry = self._cumulative[source] = MetricsRegistry()
        registry.merge_snapshot(delta)
        if local:
            self._local.add(source)
        now = self._clock()
        self._last_seen[source] = now
        self._ring.append((now, source, delta))
        for name, value in delta.get("gauges", {}).items():
            if value > self._watermarks.get(name, float("-inf")):
                self._watermarks[name] = float(value)
        self.ingested += 1
        self._trim(now)
        return True

    def _trim(self, now: float) -> None:
        # Keep one window (plus whatever maxlen already bounded).
        horizon = now - self.window_s
        while self._ring and self._ring[0][0] < horizon:
            self._ring.popleft()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def sources(self) -> list[str]:
        return sorted(self._cumulative)

    def is_local(self, source: str) -> bool:
        return source in self._local

    def last_seen_age_s(self, source: str) -> float | None:
        seen = self._last_seen.get(source)
        return None if seen is None else max(0.0, self._clock() - seen)

    def source_snapshot(self, source: str) -> dict:
        registry = self._cumulative.get(source)
        return registry.snapshot() if registry is not None else {}

    def totals(self) -> dict:
        """Cumulative snapshot merged across every source."""
        merged = MetricsRegistry()
        for source in self.sources():
            merged.merge_snapshot(self._cumulative[source].snapshot())
        return merged.snapshot()

    def window(self, window_s: float | None = None) -> tuple[float, dict]:
        """(span seconds, merged snapshot) of the deltas inside the
        rolling window — the "right now" view the admin endpoint serves."""
        window_s = self.window_s if window_s is None else float(window_s)
        now = self._clock()
        horizon = now - window_s
        merged = MetricsRegistry()
        oldest = None
        for stamp, _, delta in self._ring:
            if stamp < horizon:
                continue
            if oldest is None:
                oldest = stamp
            merged.merge_snapshot(delta)
        span = 0.0 if oldest is None else max(1e-9, now - oldest)
        return span, merged.snapshot()

    def watermarks(self) -> dict:
        return dict(self._watermarks)

    # ------------------------------------------------------------------
    # hand-off
    # ------------------------------------------------------------------
    def fold_into(self, registry: MetricsRegistry) -> int:
        """Merge every *remote* source's cumulative metrics into
        ``registry`` (the process-global one, at stop) so pushed deltas
        end up in the final report exactly once.  Local sources are
        skipped — their deltas were sampled *from* that registry.
        Returns the number of sources folded."""
        folded = 0
        for source in self.sources():
            if source in self._local:
                continue
            registry.merge_snapshot(self._cumulative[source].snapshot())
            folded += 1
        return folded

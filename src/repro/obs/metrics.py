"""Process-local metrics registry: counters, gauges, histograms.

The metrics half of :mod:`repro.obs`.  One :class:`MetricsRegistry` per
process absorbs every counter bag the pipeline already keeps —
:class:`~repro.nn.engine.EngineStats` (``engine.cache.*``), the
:class:`~repro.experiments.manifest.ArtifactCache` accounting
(``artifact.*``), retry/backoff scheduling from
:mod:`repro.reliability` (``retry.*``, ``faults.*``), the simulators'
:class:`~repro.hw.counters.ActivityCounters`
(``activity.<architecture>.<network>.*``), and per-layer forward compute
times (``nn.layer.<network>.<layer>`` histograms) — under one dotted
namespace (the full table lives in EXPERIMENTS.md, "Observability").

Unlike tracing, metrics are always on: every instrument is a dict update
behind one lock, which is noise next to the work being counted.  Worker
processes ship :meth:`MetricsRegistry.snapshot` back through the pool;
the parent :meth:`~MetricsRegistry.merge_snapshot`-s them (counters and
histograms accumulate, gauges are idempotent re-statements of derived
facts and merge by last-wins), and the merged snapshot is serialized
into the run manifest (schema v3) for ``repro-obs report`` to read
without rerunning anything.
"""

from __future__ import annotations

import os
import threading

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "counter_add",
    "gauge_set",
    "observe",
    "take_snapshot",
    "merge_snapshot",
]


class Histogram:
    """Streaming summary of observed values (count/total/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def merge_dict(self, payload: dict) -> None:
        count = int(payload.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(payload.get("total", 0.0))
        self.min = min(self.min, float(payload.get("min", float("inf"))))
        self.max = max(self.max, float(payload.get("max", float("-inf"))))


class MetricsRegistry:
    """Named counters, gauges, and histograms with snapshot/merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def counter_add(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def counter(self, name: str) -> float:
        with self._lock:
            return self.counters.get(name, 0.0)

    # ------------------------------------------------------------------
    # snapshot / merge (the cross-process contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe view of everything recorded so far."""
        with self._lock:
            return {
                "pid": os.getpid(),
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in self.histograms.items()
                },
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot in (counters/histograms sum,
        gauges last-wins — they restate derived facts idempotently)."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self.gauges[name] = value
            for name, payload in snapshot.get("histograms", {}).items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram()
                histogram.merge_dict(payload)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


_REGISTRY = MetricsRegistry()


def _after_fork_in_child() -> None:
    """A forked worker starts from zero so the snapshot it ships back
    covers only its own work (no double counting of pre-fork totals)."""
    _REGISTRY._lock = threading.Lock()
    _REGISTRY.reset()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_after_fork_in_child)


def get_metrics() -> MetricsRegistry:
    """This process's registry (one per process, reset in forked children)."""
    return _REGISTRY


def reset_metrics() -> None:
    _REGISTRY.reset()


def counter_add(name: str, amount: float = 1.0) -> None:
    _REGISTRY.counter_add(name, amount)


def gauge_set(name: str, value: float) -> None:
    _REGISTRY.gauge_set(name, value)


def observe(name: str, value: float) -> None:
    _REGISTRY.observe(name, value)


def take_snapshot() -> dict:
    """Snapshot *and reset* — what a pool worker ships back per task, so
    a reused worker never re-ships counts it already reported."""
    snapshot = _REGISTRY.snapshot()
    _REGISTRY.reset()
    return snapshot


def merge_snapshot(snapshot: dict) -> None:
    _REGISTRY.merge_snapshot(snapshot)

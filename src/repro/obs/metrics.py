"""Process-local metrics registry: counters, gauges, histograms.

The metrics half of :mod:`repro.obs`.  One :class:`MetricsRegistry` per
process absorbs every counter bag the pipeline already keeps —
:class:`~repro.nn.engine.EngineStats` (``engine.cache.*``), the
:class:`~repro.experiments.manifest.ArtifactCache` accounting
(``artifact.*``), retry/backoff scheduling from
:mod:`repro.reliability` (``retry.*``, ``faults.*``), the simulators'
:class:`~repro.hw.counters.ActivityCounters`
(``activity.<architecture>.<network>.*``), and per-layer forward compute
times (``nn.layer.<network>.<layer>`` histograms) — under one dotted
namespace (the full table lives in EXPERIMENTS.md, "Observability").

Unlike tracing, metrics are always on: every instrument is a dict update
behind one lock, which is noise next to the work being counted.  Worker
processes ship :meth:`MetricsRegistry.snapshot` back through the pool;
the parent :meth:`~MetricsRegistry.merge_snapshot`-s them (counters and
histograms accumulate, gauges are idempotent re-statements of derived
facts and merge by last-wins), and the merged snapshot is serialized
into the run manifest (schema v3) for ``repro-obs report`` to read
without rerunning anything.
"""

from __future__ import annotations

import math
import os
import threading

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "counter_add",
    "gauge_set",
    "gauge_max",
    "observe",
    "take_snapshot",
    "merge_snapshot",
    "SKETCH_BUCKETS_PER_OCTAVE",
    "sketch_index",
    "sketch_boundary",
]

#: Log-bucket sketch resolution: boundaries at ``2 ** (i / 8)``, i.e.
#: each bucket's upper bound is ~9.05% above the previous one, so any
#: reported quantile is within one ~9% relative step of the true value.
SKETCH_BUCKETS_PER_OCTAVE = 8

#: Bucket index clamp.  ``2**(-96/8)`` = ~2.4e-4 and ``2**(384/8)`` =
#: ~2.8e14 bracket every quantity the repo observes (per-layer seconds
#: through latency milliseconds through byte counts); out-of-range
#: values saturate into the edge buckets instead of growing the dict.
_SKETCH_MIN_INDEX = -96
_SKETCH_MAX_INDEX = 384

#: Synthetic index for non-positive observations (its "upper boundary"
#: is 0.0); sorts below every real bucket.
_SKETCH_ZERO_INDEX = _SKETCH_MIN_INDEX - 1


def sketch_index(value: float) -> int:
    """The fixed log bucket a positive value falls in (deterministic:
    the boundaries are compile-time constants, never data-adaptive, so
    two processes always bucket the same value identically)."""
    if value <= 0.0:
        return _SKETCH_ZERO_INDEX
    index = math.ceil(math.log2(value) * SKETCH_BUCKETS_PER_OCTAVE)
    return max(_SKETCH_MIN_INDEX, min(_SKETCH_MAX_INDEX, index))


def sketch_boundary(index: int) -> float:
    """Upper value boundary of bucket ``index`` (0.0 for the zero bucket)."""
    if index <= _SKETCH_ZERO_INDEX:
        return 0.0
    return 2.0 ** (index / SKETCH_BUCKETS_PER_OCTAVE)


class Histogram:
    """Streaming summary of observed values.

    Beyond count/total/min/max, every histogram carries a *fixed-
    boundary log-bucket quantile sketch*: observations are counted into
    buckets bounded at ``2 ** (i/8)``.  Because the boundaries are
    fixed, merging two sketches is exact bucket-count addition —
    associative and commutative, so quantiles computed after any merge
    order are identical (the property the multi-process snapshot merge
    relies on).  :meth:`quantile` answers p50/p95/p99 to within one
    ~9% bucket step, clamped into the exact observed [min, max].
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = sketch_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile (``q`` in [0, 100]) from the sketch.

        Pre-sketch payloads (a merged snapshot from an old manifest may
        carry histograms without buckets) degrade to a linear
        interpolation between the recorded extremes rather than failing.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        population = sum(self.buckets.values())
        if population == 0:
            # Tolerant fallback for sketchless (pre-v4) payloads.
            return self.min + (self.max - self.min) * (q / 100.0)
        rank = max(1, math.ceil(population * q / 100.0))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                bound = sketch_boundary(index)
                return min(max(bound, self.min), self.max)
        return self.max  # pragma: no cover - rank <= population

    def percentiles(self) -> dict:
        """The standard serving digest: p50/p95/p99 (rounded)."""
        return {
            "p50": round(self.quantile(50), 3),
            "p95": round(self.quantile(95), 3),
            "p99": round(self.quantile(99), 3),
        }

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def merge_dict(self, payload: dict) -> None:
        count = int(payload.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(payload.get("total", 0.0))
        self.min = min(self.min, float(payload.get("min", float("inf"))))
        self.max = max(self.max, float(payload.get("max", float("-inf"))))
        # Tolerant: payloads serialized before the sketch existed simply
        # have no buckets; quantiles then cover the sketched population.
        for key, value in (payload.get("buckets") or {}).items():
            try:
                index = int(key)
                value = int(value)
            except (TypeError, ValueError):
                continue
            if value > 0:
                self.buckets[index] = self.buckets.get(index, 0) + value

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild a histogram (sketch included) from its payload."""
        histogram = cls()
        if isinstance(payload, dict):
            histogram.merge_dict(payload)
        return histogram


class MetricsRegistry:
    """Named counters, gauges, and histograms with snapshot/merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def counter_add(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """High-watermark gauge: keep the maximum ever stated.

        Name the gauge with a ``.max`` suffix — snapshot merges combine
        ``.max`` gauges by maximum (not last-wins), so a watermark
        survives being merged across processes and telemetry windows.
        """
        value = float(value)
        with self._lock:
            if value > self.gauges.get(name, float("-inf")):
                self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def counter(self, name: str) -> float:
        with self._lock:
            return self.counters.get(name, 0.0)

    # ------------------------------------------------------------------
    # snapshot / merge (the cross-process contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe view of everything recorded so far."""
        with self._lock:
            return {
                "pid": os.getpid(),
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in self.histograms.items()
                },
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot in (counters/histograms sum,
        gauges last-wins — they restate derived facts idempotently —
        except ``.max``-suffixed high-watermark gauges, which merge by
        maximum so a watermark never shrinks across processes)."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            for name, value in snapshot.get("gauges", {}).items():
                if name.endswith(".max"):
                    value = max(value, self.gauges.get(name, float("-inf")))
                self.gauges[name] = value
            for name, payload in snapshot.get("histograms", {}).items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram()
                histogram.merge_dict(payload)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


_REGISTRY = MetricsRegistry()


def _after_fork_in_child() -> None:
    """A forked worker starts from zero so the snapshot it ships back
    covers only its own work (no double counting of pre-fork totals)."""
    _REGISTRY._lock = threading.Lock()
    _REGISTRY.reset()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_after_fork_in_child)


def get_metrics() -> MetricsRegistry:
    """This process's registry (one per process, reset in forked children)."""
    return _REGISTRY


def reset_metrics() -> None:
    _REGISTRY.reset()


def counter_add(name: str, amount: float = 1.0) -> None:
    _REGISTRY.counter_add(name, amount)


def gauge_set(name: str, value: float) -> None:
    _REGISTRY.gauge_set(name, value)


def gauge_max(name: str, value: float) -> None:
    _REGISTRY.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    _REGISTRY.observe(name, value)


def take_snapshot() -> dict:
    """Snapshot *and reset* — what a pool worker ships back per task, so
    a reused worker never re-ships counts it already reported."""
    snapshot = _REGISTRY.snapshot()
    _REGISTRY.reset()
    return snapshot


def merge_snapshot(snapshot: dict) -> None:
    _REGISTRY.merge_snapshot(snapshot)

"""Unified observability for the reproduction pipeline.

Zero-dependency tracing + metrics, wired through every hot path:

* :mod:`repro.obs.trace` — hierarchical :class:`Span`\\ s (context manager
  and decorator, monotonic clocks, per-process buffers) exported as
  Chrome trace-event JSON (``--trace trace.json``; open in Perfetto or
  ``chrome://tracing``).  Off by default; no-op spans cost one predicate.
* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  of counters/gauges/histograms that absorbs the engine cache stats,
  artifact-cache accounting, retry/backoff scheduling, fault injections,
  and simulator activity counters under one namespace; worker snapshots
  merge into the parent and land in the run manifest (schema v3).
* :mod:`repro.obs.report` — the ``repro-obs report`` CLI (and the
  runner's ``--metrics`` flag): self-time breakdowns per layer, network,
  and experiment plus cache/retry summaries from any saved manifest.
* :mod:`repro.obs.timeseries` — the live telemetry plane: windowed
  per-source aggregation of streamed metric deltas (shard pushes,
  local sampler ticks) with high-watermark gauges.
* :mod:`repro.obs.slo` — declared latency/error/shed objectives,
  evaluated into ``slo.*`` gauges and burn-rate counters.
* :mod:`repro.obs.expo` — Prometheus text exposition of any snapshot
  (histogram buckets straight from the quantile sketch) plus a linter.

Instrumentation never perturbs results: spans and metrics only observe,
and the golden-snapshot tests pin byte-identical output with tracing on
and off.
"""

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    counter_add,
    gauge_max,
    gauge_set,
    get_metrics,
    merge_snapshot,
    observe,
    reset_metrics,
    sketch_boundary,
    sketch_index,
    take_snapshot,
)
from repro.obs.trace import (
    Span,
    disable_tracing,
    drain_events,
    enable_tracing,
    event_count,
    extend_events,
    reset_tracing,
    span,
    traced,
    tracing_enabled,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Span",
    "span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "reset_tracing",
    "drain_events",
    "extend_events",
    "event_count",
    "write_chrome_trace",
    "validate_chrome_trace",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "counter_add",
    "gauge_set",
    "gauge_max",
    "observe",
    "take_snapshot",
    "merge_snapshot",
    "sketch_index",
    "sketch_boundary",
]

"""Hierarchical spans with Chrome trace-event export.

The tracing half of :mod:`repro.obs`: code brackets interesting work in
*spans* — named intervals with a category and structured attributes —
via the :func:`span` context manager or the :func:`traced` decorator.
Durations come from ``time.perf_counter`` (monotonic; a span can never
be negative even if the wall clock steps), while absolute timestamps are
anchored to one wall-clock epoch per process so spans recorded in
different worker processes line up on a single timeline.

Tracing is **off by default and off-by-default-cheap**: with tracing
disabled :func:`span` returns a shared no-op object without reading the
clock or touching any buffer, so instrumented hot paths (per-layer
forwards, per-unit execution) cost one predicate check.  Enabling it
(``--trace trace.json`` on the experiment runner, or the
``CNVLUTIN_TRACE`` environment variable) buffers completed spans
per process; :func:`drain_events` hands the buffer to whoever ships it
(the parallel runner returns worker buffers through the pool and merges
them into the parent's), and :func:`write_chrome_trace` serializes the
merged buffer as Chrome trace-event JSON — load it in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Every event is a "complete" (``"ph": "X"``) trace event carrying
``name``, ``cat``, microsecond ``ts``/``dur``, the recording ``pid`` and
``tid``, and its attributes under ``args`` (including the span's nesting
``depth`` within its thread).  Spans recorded on the same thread nest by
construction: a child enters after and exits before its parent.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "TRACE_ENV",
    "Span",
    "span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "reset_tracing",
    "drain_events",
    "extend_events",
    "event_count",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Setting this environment variable (to anything non-empty) enables
#: tracing from process start — how worker processes spawned with the
#: "spawn" start method inherit the parent's ``--trace`` request.
TRACE_ENV = "CNVLUTIN_TRACE"


class _TracerState:
    """Per-process tracer: enabled flag, event buffer, clock anchors."""

    def __init__(self) -> None:
        self.enabled = bool(os.environ.get(TRACE_ENV, "").strip())
        self.events: list[dict] = []
        self.lock = threading.Lock()
        self.local = threading.local()
        self.rebase_clocks()

    def rebase_clocks(self) -> None:
        """Pin the wall-clock epoch that perf_counter offsets hang off."""
        self.wall_epoch = time.time()
        self.perf_epoch = time.perf_counter()

    def stack(self) -> list:
        stack = getattr(self.local, "stack", None)
        if stack is None:
            stack = self.local.stack = []
        return stack


_STATE = _TracerState()


def _after_fork_in_child() -> None:
    """A forked worker must not inherit (and later re-ship) the parent's
    buffered events; its clock anchors stay valid, the buffer does not."""
    _STATE.events = []
    _STATE.lock = threading.Lock()
    _STATE.local = threading.local()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_after_fork_in_child)


class Span:
    """One in-flight traced interval; created via :func:`span`."""

    __slots__ = ("name", "cat", "args", "_start", "_depth")

    def __init__(self, name: str, cat: str, args: dict):
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (e.g. a cache verdict)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _STATE.stack()
        self._depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        stack = _STATE.stack()
        if stack and stack[-1] is self:
            stack.pop()
        args = self.args
        args["depth"] = self._depth
        if exc_type is not None:
            args["error"] = exc_type.__name__
        event = {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": (_STATE.wall_epoch + self._start - _STATE.perf_epoch) * 1e6,
            "dur": (end - self._start) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        }
        with _STATE.lock:
            _STATE.events.append(event)
        return False


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, cat: str = "app", **attrs):
    """A context manager tracing ``name``; a shared no-op when disabled."""
    if not _STATE.enabled:
        return _NULL_SPAN
    return Span(name, cat, attrs)


def traced(name: str | None = None, cat: str = "app"):
    """Decorator form of :func:`span` (span name defaults to the function's
    qualified name)."""

    def decorate(func):
        span_name = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _STATE.enabled:
                return func(*args, **kwargs)
            with Span(span_name, cat, {}):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def enable_tracing() -> None:
    _STATE.enabled = True


def disable_tracing() -> None:
    _STATE.enabled = False


def tracing_enabled() -> bool:
    return _STATE.enabled


def reset_tracing() -> None:
    """Drop all buffered events (the enabled flag is left alone)."""
    with _STATE.lock:
        _STATE.events = []
    _STATE.local = threading.local()


def drain_events() -> list[dict]:
    """Return and clear this process's buffered events (ship-and-merge)."""
    with _STATE.lock:
        events, _STATE.events = _STATE.events, []
    return events


def extend_events(events: list[dict]) -> None:
    """Merge events recorded elsewhere (a worker process) into the buffer.

    Workers carry their own ``pid``, so merged events stay attributed;
    their timestamps share the wall-clock anchor, so the merged trace is
    one coherent timeline.
    """
    if not events:
        return
    with _STATE.lock:
        _STATE.events.extend(events)


def event_count() -> int:
    with _STATE.lock:
        return len(_STATE.events)


def write_chrome_trace(path: Path | str, events: list[dict] | None = None) -> int:
    """Write buffered (or given) events as a Chrome trace-event JSON file.

    Returns the number of events written.  The buffer is *not* cleared —
    callers that want ship-and-merge semantics use :func:`drain_events`.
    """
    if events is None:
        with _STATE.lock:
            events = list(_STATE.events)
    events = sorted(events, key=lambda e: (e["pid"], e["tid"], e["ts"]))
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return len(events)


def validate_chrome_trace(document: dict) -> list[str]:
    """Problems (empty list = valid) with a Chrome trace-event document.

    Checks the shape the viewers require: a ``traceEvents`` list whose
    entries carry ``name``/``ph``/``ts``/``pid``/``tid``, with ``"X"``
    events carrying a non-negative ``dur``.  Used by tests and CI.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents list"]
    required = ("name", "ph", "ts", "pid", "tid")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        missing = [key for key in required if key not in event]
        if missing:
            problems.append(f"event {index} missing keys {missing}")
            continue
        if event["ph"] == "X":
            if "dur" not in event:
                problems.append(f"event {index} ({event['name']}) has no dur")
            elif event["dur"] < 0:
                problems.append(
                    f"event {index} ({event['name']}) has negative dur "
                    f"{event['dur']}"
                )
        if event["ts"] < 0:
            problems.append(f"event {index} ({event['name']}) has negative ts")
    return problems

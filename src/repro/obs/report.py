"""``repro-obs`` — render observability reports from run manifests.

Answers "where did the time go and how did the caches behave" from any
saved run manifest (schema v4; older manifests load tolerantly — v2
with empty metrics, v3 without quantile sketches) without rerunning a
single experiment::

    repro-obs report manifest.json
    repro-obs report manifest.json --top 10
    python -m repro.obs.report report manifest.json

The report is assembled from the manifest's unit records plus the merged
metrics snapshot the run serialized (see :mod:`repro.obs.metrics`):

* self-time by experiment and the slowest work units (per-unit seconds,
  attempts, cache traffic);
* per-layer and per-network forward-compute breakdowns from the
  ``nn.layer.<network>.<layer>`` histograms (the answer to "which
  layer's forward dominates");
* engine-cache hit rate (``engine.cache.*``), artifact-cache
  store/hit/quarantine counts, and retry/backoff/fault-injection
  summaries;
* a serving summary (``serve.*``, when present): request outcomes with
  the shed rate, batch count/size, retries, and latency — the
  ``repro-serve`` namespaces;
* a sharded-serving summary (``router.*`` / ``shard.*``, when present):
  forwarded/shed/failover/death/respawn counts, per-shard forward
  distribution, and the shared-weight arena size;
* an integrity summary (``integrity.*``, when present): ABFT / CRC
  check and detection counts, quarantines by reason, arena republishes,
  canary probes, injected weight flips, and stale arenas swept;
* a backend-activity table (``activity.*`` gauges, when present): the
  per-(backend, network) activity-counter profile every timing
  simulator publishes, labelled with registry backend names;
* an SLO summary (``slo.*``, when present): declared objective targets
  vs observed values, error-budget burn rates, breach counts, and the
  router health line (live shards, deaths/respawns, quarantines, queue
  depth high watermark).

Serving latency lines include p50/p95/p99 wherever the manifest's
histograms carry the quantile sketch (v4+); pre-sketch manifests keep
their mean/max lines.

The experiment runner's ``--metrics`` flag prints the same report for
the run it just finished.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.metrics import Histogram

__all__ = ["metrics_report", "main"]


def _format_table(rows: list[dict]) -> str:
    from repro.experiments.report import format_table

    return format_table(rows)


def _layer_rows(histograms: dict, top: int) -> tuple[list[dict], list[dict]]:
    """(per-layer rows, per-network rows) from ``nn.layer.*`` histograms."""
    layers: list[dict] = []
    networks: dict[str, dict] = {}
    for name, payload in histograms.items():
        if not name.startswith("nn.layer."):
            continue
        _, _, rest = name.partition("nn.layer.")
        network, _, layer = rest.partition(".")
        count = int(payload.get("count", 0))
        total = float(payload.get("total", 0.0))
        layers.append(
            {
                "network": network,
                "layer": layer or "?",
                "computes": count,
                "seconds": round(total, 4),
                "mean_ms": round(1e3 * total / count, 3) if count else 0.0,
            }
        )
        agg = networks.setdefault(
            network, {"network": network, "layers": 0, "computes": 0, "seconds": 0.0}
        )
        agg["layers"] += 1
        agg["computes"] += count
        agg["seconds"] += total
    layers.sort(key=lambda row: -row["seconds"])
    network_rows = sorted(networks.values(), key=lambda row: -row["seconds"])
    for row in network_rows:
        row["seconds"] = round(row["seconds"], 4)
    return layers[:top], network_rows


def _experiment_rows(units: list[dict]) -> list[dict]:
    perexp: dict[str, dict] = {}
    total = sum(unit.get("seconds", 0.0) for unit in units) or 1.0
    for unit in units:
        name = unit.get("experiment") or unit.get("unit", "?")
        agg = perexp.setdefault(
            name, {"experiment": name, "units": 0, "seconds": 0.0, "attempts": 0}
        )
        agg["units"] += 1
        agg["seconds"] += unit.get("seconds", 0.0)
        agg["attempts"] += unit.get("attempts", 1)
    rows = sorted(perexp.values(), key=lambda row: -row["seconds"])
    for row in rows:
        row["share"] = f"{row['seconds'] / total:.0%}"
        row["seconds"] = round(row["seconds"], 3)
    return rows


def _unit_rows(units: list[dict], top: int) -> list[dict]:
    rows = [
        {
            "unit": unit.get("unit", "?"),
            "phase": unit.get("phase", "?"),
            "worker": unit.get("worker", 0),
            "seconds": round(unit.get("seconds", 0.0), 3),
            "hits": unit.get("cache_hits", 0),
            "misses": unit.get("cache_misses", 0),
            "attempts": unit.get("attempts", 1),
            "status": unit.get("status", "?"),
        }
        for unit in sorted(units, key=lambda u: -u.get("seconds", 0.0))
    ]
    return rows[:top]


def _rate(hits: float, misses: float) -> str:
    total = hits + misses
    return f"{hits / total:.0%}" if total else "n/a"


def metrics_report(manifest: dict, top: int = 15) -> str:
    """Human-readable observability report for one run-manifest dict."""
    units = manifest.get("units", [])
    metrics = manifest.get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    cache = manifest.get("cache", {})

    parts: list[str] = []
    parts.append(
        f"== obs report: scale={manifest.get('scale', '?')} "
        f"jobs={manifest.get('jobs', '?')} "
        f"wall={manifest.get('wall_seconds', 0.0):.1f}s "
        f"units={len(units)} "
        f"(manifest v{manifest.get('version', 1)}) =="
    )

    if units:
        parts.append("\n-- self time by experiment (worst first) --")
        parts.append(_format_table(_experiment_rows(units)))
        parts.append(f"\n-- slowest work units (top {top}) --")
        parts.append(_format_table(_unit_rows(units, top)))

    layer_rows, network_rows = _layer_rows(histograms, top)
    if layer_rows:
        parts.append(f"\n-- forward compute by layer (top {top}) --")
        parts.append(_format_table(layer_rows))
        parts.append("\n-- forward compute by network --")
        parts.append(_format_table(network_rows))

    engine_hits = counters.get("engine.cache.hits", 0)
    engine_misses = counters.get("engine.cache.misses", 0)
    # Prefer the merged metrics counters (they include worker-process
    # stores); a v2 manifest only has its own cache section.
    art_hits = counters.get("artifact.hits", cache.get("hits", 0))
    art_misses = counters.get("artifact.misses", cache.get("misses", 0))
    art_stores = counters.get("artifact.stores", cache.get("stores", 0))
    art_quarantined = counters.get(
        "artifact.quarantined", cache.get("quarantined", 0)
    )
    parts.append(
        "\n-- caches --\n"
        f"engine cache: {engine_hits:.0f} hits / {engine_misses:.0f} misses / "
        f"{counters.get('engine.cache.evictions', 0):.0f} evictions "
        f"({_rate(engine_hits, engine_misses)} hit rate)\n"
        f"artifact cache: {art_hits:.0f} hits / {art_misses:.0f} misses / "
        f"{art_stores:.0f} stores / {art_quarantined:.0f} quarantined "
        f"({_rate(art_hits, art_misses)} hit rate)"
    )

    serve_requests = counters.get("serve.requests", 0)
    if serve_requests:
        batch_hist = histograms.get("serve.batch_size", {})
        latency_hist = histograms.get("serve.latency_ms", {})
        batches = counters.get("serve.batches", 0)
        batch_count = int(batch_hist.get("count", 0))
        shed = counters.get("serve.shed", 0)
        mean_batch = (
            float(batch_hist.get("total", 0.0)) / batch_count
            if batch_count else 0.0
        )
        latency_count = int(latency_hist.get("count", 0))
        mean_latency = (
            float(latency_hist.get("total", 0.0)) / latency_count
            if latency_count else 0.0
        )
        # Quantiles only when the payload carries the sketch (v4+
        # manifests); pre-sketch manifests keep the mean/max line.
        quantiles = ""
        if latency_hist.get("buckets"):
            digest = Histogram.from_dict(latency_hist).percentiles()
            quantiles = (
                f"p50 {digest['p50']:.1f} / p95 {digest['p95']:.1f} / "
                f"p99 {digest['p99']:.1f} ms, "
            )
        queue_line = (
            f"queue depth last {gauges.get('serve.queue_depth', 0):.0f}"
        )
        if "serve.queue_depth.max" in gauges:
            queue_line += f" (max {gauges['serve.queue_depth.max']:.0f})"
        parts.append(
            "\n-- serving --\n"
            f"requests: {serve_requests:.0f} "
            f"({counters.get('serve.completed', 0):.0f} ok / {shed:.0f} shed / "
            f"{counters.get('serve.timeouts', 0):.0f} timeout / "
            f"{counters.get('serve.errors', 0):.0f} error; "
            f"shed rate {shed / serve_requests:.0%})\n"
            f"batches: {batches:.0f} "
            f"(mean size {mean_batch:.1f}, max {batch_hist.get('max', 0):.0f}; "
            f"retries {counters.get('serve.retries', 0):.0f})\n"
            f"latency: mean {mean_latency:.1f} ms, {quantiles}"
            f"max {latency_hist.get('max', 0.0):.1f} ms; "
            f"{queue_line}"
        )

    router_requests = counters.get("router.requests", 0)
    if router_requests:
        forward_hist = histograms.get("router.forward_ms", {})
        forward_count = int(forward_hist.get("count", 0))
        mean_forward = (
            float(forward_hist.get("total", 0.0)) / forward_count
            if forward_count else 0.0
        )
        shed = counters.get("router.shed", 0)
        per_shard = [
            f"  shard{name[len('router.forwarded.shard'):]}: {value:.0f} "
            f"forwarded"
            for name, value in sorted(counters.items())
            if name.startswith("router.forwarded.shard")
        ]
        parts.append(
            "\n-- sharded serving --\n"
            f"router: {router_requests:.0f} requests "
            f"({counters.get('router.forwarded', 0):.0f} forwarded / "
            f"{shed:.0f} shed / "
            f"{counters.get('router.errors', 0):.0f} error; "
            f"shed rate {shed / router_requests:.0%})\n"
            f"failover: {counters.get('router.retries', 0):.0f} retries, "
            f"{counters.get('router.failovers', 0):.0f} failovers, "
            f"{counters.get('router.deaths', 0):.0f} deaths, "
            f"{counters.get('router.respawns', 0):.0f} respawns; "
            f"live shards {gauges.get('router.live_shards', 0):.0f}\n"
            + (
                "forward: mean {mean:.1f} ms, p50 {p50:.1f} / "
                "p95 {p95:.1f} / p99 {p99:.1f} ms, ".format(
                    mean=mean_forward,
                    **Histogram.from_dict(forward_hist).percentiles(),
                )
                if forward_hist.get("buckets")
                else f"forward: mean {mean_forward:.1f} ms, "
            )
            + f"max {forward_hist.get('max', 0.0):.1f} ms "
            f"(shared weights: "
            f"{counters.get('engine.shared.attached', 0):.0f} attach(es), "
            f"{counters.get('engine.shared.bytes', 0) / 1e6:.1f} MB arena)"
        )
        if per_shard:
            parts.append("\n".join(per_shard))

    if any(name.startswith("integrity.") for name in counters):
        detected = [
            f"{name[len('integrity.detected.'):]}: {value:.0f}"
            for name, value in sorted(counters.items())
            if name.startswith("integrity.detected.")
        ]
        quarantines = [
            f"{name[len('integrity.quarantines.'):]}: {value:.0f}"
            for name, value in sorted(counters.items())
            if name.startswith("integrity.quarantines.")
        ]
        parts.append(
            "\n-- integrity --\n"
            f"checks: {counters.get('integrity.checks.abft', 0):.0f} ABFT / "
            f"{counters.get('integrity.checks.crc', 0):.0f} CRC; "
            f"detected: {', '.join(detected) if detected else 'none'}\n"
            f"healing: {counters.get('integrity.quarantines', 0):.0f} "
            f"quarantine(s)"
            f"{' (' + ', '.join(quarantines) + ')' if quarantines else ''}, "
            f"{counters.get('integrity.republishes', 0):.0f} republish(es); "
            f"canary probes: "
            f"{counters.get('integrity.canary.probes', 0):.0f}\n"
            f"injected weight flips: "
            f"{counters.get('integrity.faults.weight_flips', 0):.0f}; "
            f"stale arenas swept: "
            f"{counters.get('integrity.arena.swept', 0):.0f}"
        )

    slo_names = sorted(
        name[len("slo."):-len(".value")]
        for name in gauges
        if name.startswith("slo.") and name.endswith(".value")
    )
    if slo_names:
        slo_rows = []
        for name in slo_names:
            burn = gauges.get(f"slo.{name}.burn_rate", 0.0)
            slo_rows.append(
                {
                    "objective": name,
                    "value": gauges.get(f"slo.{name}.value", 0.0),
                    "target": gauges.get(f"slo.{name}.target", 0.0),
                    "burn_rate": burn,
                    "breaches": int(
                        counters.get(f"slo.{name}.breaches", 0)
                    ),
                    "status": "ok" if burn <= 1.0 else "BURNING",
                }
            )
        parts.append("\n-- slo --")
        parts.append(_format_table(slo_rows))
        parts.append(
            f"health: live shards "
            f"{gauges.get('router.live_shards', 0):.0f}; "
            f"deaths {counters.get('router.deaths', 0):.0f}, "
            f"respawns {counters.get('router.respawns', 0):.0f}, "
            f"quarantines {counters.get('integrity.quarantines', 0):.0f}; "
            f"queue depth max "
            f"{gauges.get('serve.queue_depth.max', 0):.0f}"
        )

    sparse_gemms = counters.get("engine.sparse.gemms.sparse", 0)
    dense_gemms = counters.get("engine.sparse.gemms.dense", 0)
    if sparse_gemms or dense_gemms:
        macs_total = counters.get("engine.sparse.macs.total", 0)
        macs_skipped = counters.get("engine.sparse.macs.skipped", 0)
        skip_rate = macs_skipped / macs_total if macs_total else 0.0
        parts.append(
            "\n-- sparse kernels --\n"
            f"gemms: {sparse_gemms:.0f} sparse / {dense_gemms:.0f} dense "
            f"({_rate(sparse_gemms, dense_gemms)} sparse)\n"
            f"macs: {macs_skipped:.0f} of {macs_total:.0f} skipped "
            f"({skip_rate:.0%}); "
            f"fallbacks: {counters.get('engine.sparse.fallbacks', 0):.0f}"
        )

    activity: dict[tuple[str, str], dict[str, float]] = {}
    for name, value in gauges.items():
        if not name.startswith("activity."):
            continue
        fields = name[len("activity."):].split(".")
        if len(fields) != 3:
            continue
        arch, network, counter = fields
        activity.setdefault((arch, network), {})[counter] = value
    if activity:
        # Registry lookup resolves each gauge's architecture string to its
        # backend name; architectures from other builds render as-is.
        from repro.backends import architectures

        arch_names = architectures()
        order = {arch: idx for idx, arch in enumerate(arch_names)}
        activity_rows = [
            {
                "backend": arch_names.get(arch, arch),
                "architecture": arch,
                "network": network,
                "mults": f"{counts.get('mults', 0.0):.3e}",
                "counters": len(counts),
                "total_events": f"{sum(counts.values()):.3e}",
            }
            for (arch, network), counts in sorted(
                activity.items(),
                key=lambda kv: (order.get(kv[0][0], len(order)), kv[0]),
            )
        ]
        parts.append("\n-- backend activity --")
        parts.append(_format_table(activity_rows))

    extra_attempts = sum(max(0, unit.get("attempts", 1) - 1) for unit in units)
    fault_lines = [
        f"  {name[len('faults.injected.'):]}: {value:.0f}"
        for name, value in sorted(counters.items())
        if name.startswith("faults.injected.")
    ]
    parts.append(
        "\n-- retries / faults --\n"
        f"unit retries: {extra_attempts} extra attempt(s) across "
        f"{len(units)} unit(s); "
        f"backoffs scheduled: {counters.get('retry.scheduled', 0):.0f} "
        f"({counters.get('retry.backoff_seconds', 0):.2f}s planned); "
        f"faults injected: {counters.get('faults.injected', 0):.0f}"
    )
    if fault_lines:
        parts.append("\n".join(fault_lines))
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="summarize a run manifest")
    report.add_argument("manifest", help="run manifest JSON (schema v2 or v3)")
    report.add_argument(
        "--top", type=int, default=15,
        help="rows per breakdown table (default 15)",
    )
    args = parser.parse_args(argv)

    path = Path(args.manifest)
    try:
        with open(path) as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        print(f"error: no such manifest {path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(manifest, dict):
        print(f"error: {path} is not a manifest object", file=sys.stderr)
        return 2
    try:
        print(metrics_report(manifest, top=args.top))
    except BrokenPipeError:  # |head is a normal way to read a report
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Telemetry-plane overhead on the sharded serving tier.

Drives the same threshold-sweep workload through a 2-shard tier twice —
telemetry off, and telemetry fully on (1s shard delta pushes, the local
router sampler, the SLO tracker, and an admin endpoint scraped for
``/stats`` + ``/metrics`` every 500ms for the whole run) — and reports
closed-loop throughput for each mode.  The mechanism under test is the
whole live-observability path: ``take_snapshot`` deltas on the shard
side, the control-socket push, ring-buffer ingestion, and exposition
rendering under concurrent scrapes.  The run is closed-loop so
throughput differences are telemetry cost, not queueing artifacts.

Floor (the ISSUE's acceptance criterion): telemetry on costs at most 3%
of untelemetered throughput.

Correctness is cross-checked per mode: telemetry only observes, so
every ok response must be canonical-byte-identical to direct inference
— streaming metrics and scraping the admin port can never change
answers in deterministic mode.

Repeats are *interleaved* across modes (off, on, off, on, …) and the
best throughput per mode is kept, so neither a one-off scheduler stall
nor OS caches warming monotonically over the session reads as
telemetry overhead.

Run standalone to (re)generate ``BENCH_telemetry.json``::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [--quick]

or under pytest with the rest of the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
import urllib.request
from pathlib import Path

from repro import obs
from repro.serve.admin import AdminServer
from repro.serve.loadgen import build_sweep_requests, run_load, summarize
from repro.serve.models import ModelRepository, direct_response
from repro.serve.requests import canonical_response_bytes
from repro.serve.router import ShardedService, ShardTierConfig
from repro.serve.service import ServeConfig
from repro.serve.telemetry import TelemetryController

BENCH_NETWORKS = ("alex", "cnnS")
VARIANTS_PER_NETWORK = 4
SHARDS = 2
BENCH_REQUESTS = 480
REPEATS = 3
#: Shard push cadence in the "on" mode (the ISSUE's default interval).
PUSH_INTERVAL_S = 1.0
#: Admin scrape cadence while the load runs.
SCRAPE_INTERVAL_S = 0.5
#: Acceptance ceiling on (1 - on_throughput/off_throughput).
TELEMETRY_OVERHEAD_CEILING = 0.03
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _config() -> ServeConfig:
    return ServeConfig(
        scale="tiny",
        networks=BENCH_NETWORKS,
        max_batch=4,
        linger_ms=2.0,
        queue_limit=1024,
        workers=1,
        use_cache=True,
    )


def _tier(telemetry: bool) -> ShardTierConfig:
    return ShardTierConfig(
        shards=SHARDS,
        window=16,
        backlog=512,
        telemetry_interval_s=PUSH_INTERVAL_S if telemetry else None,
    )


def _requests(count: int):
    return build_sweep_requests(
        count,
        networks=list(BENCH_NETWORKS),
        variants_per_network=VARIANTS_PER_NETWORK,
        kinds=["classify"],
    )


def _scrape(base: str, path: str) -> str:
    with urllib.request.urlopen(f"{base}{path}", timeout=10.0) as response:
        return response.read().decode("utf-8")


async def _drive(telemetry: bool, cache_dir: str, requests_count: int) -> dict:
    obs.reset_metrics()
    service = ShardedService(
        config=_config(), tier=_tier(telemetry), cache_dir=cache_dir
    )
    groups = len(BENCH_NETWORKS) * VARIANTS_PER_NETWORK
    await service.start()
    controller = admin = scraper = None
    scrapes = 0
    if telemetry:
        controller = TelemetryController(
            plane=service.telemetry,
            interval_s=PUSH_INTERVAL_S,
            source="router",
        )
        controller.start()
        admin = AdminServer(controller, port=0)
        await admin.start()
        base = f"http://127.0.0.1:{admin.port}"

        async def scrape_loop():
            nonlocal scrapes
            while True:
                await asyncio.sleep(SCRAPE_INTERVAL_S)
                await asyncio.to_thread(_scrape, base, "/stats")
                await asyncio.to_thread(_scrape, base, "/metrics")
                scrapes += 1

    try:
        # Warm every group's engine outside timing.
        await run_load(service, _requests(groups))
        if telemetry:
            scraper = asyncio.create_task(scrape_loop())
        result = await run_load(service, _requests(requests_count))
    finally:
        if scraper is not None:
            scraper.cancel()
            try:
                await scraper
            except asyncio.CancelledError:
                pass
        if admin is not None:
            await admin.stop()
        if controller is not None:
            await controller.stop()
        await service.stop()
    summary = summarize(result)
    summary["scrapes"] = scrapes
    summary["responses"] = {
        rid: canonical_response_bytes(resp).decode("utf-8")
        for rid, resp in result.responses.items()
        if resp.status == "ok"
    }
    return summary


def run_bench(quick: bool = False) -> dict:
    requests_count = 36 if quick else BENCH_REQUESTS
    repeats = 1 if quick else REPEATS
    modes = (("off", False), ("on", True))

    with tempfile.TemporaryDirectory(prefix="cnvlutin-bench-telem-") as cache:
        # Reference bytes from direct inference (also pre-warms the
        # shared artifact cache so shard runs measure serving).
        repo = ModelRepository(_config().paper_config(cache))
        reference = {}
        for request in _requests(requests_count):
            if request.id not in reference:
                reference[request.id] = canonical_response_bytes(
                    direct_response(repo, request)
                ).decode("utf-8")

        best: dict[str, dict] = {}
        for _ in range(repeats):
            for label, telemetry in modes:
                summary = asyncio.run(
                    _drive(telemetry, cache, requests_count)
                )
                mismatched = [
                    rid
                    for rid, canon in summary.pop("responses").items()
                    if canon != reference[rid]
                ]
                assert not mismatched, (
                    f"telemetry={label} changed response bytes: "
                    f"{mismatched[:3]}"
                )
                assert summary["error"] == 0, summary
                summary["mode"] = label
                if label not in best or (
                    summary["throughput_rps"]
                    > best[label]["throughput_rps"]
                ):
                    best[label] = summary
        points = [best[label] for label, _ in modes]

    by_mode = {point["mode"]: point for point in points}
    base = by_mode["off"]["throughput_rps"]
    overhead = None
    if base:
        overhead = round(1.0 - by_mode["on"]["throughput_rps"] / base, 4)

    return {
        "scale": "tiny",
        "networks": list(BENCH_NETWORKS),
        "shards": SHARDS,
        "requests_per_point": requests_count,
        "repeats": repeats,
        "push_interval_s": PUSH_INTERVAL_S,
        "scrape_interval_s": SCRAPE_INTERVAL_S,
        "correctness": (
            "ok responses byte-identical to direct inference with "
            "telemetry streaming and the admin endpoint scraped "
            "(telemetry only observes)"
        ),
        "points": points,
        "telemetry_overhead": overhead,
        "telemetry_overhead_ceiling": TELEMETRY_OVERHEAD_CEILING,
        "quick": quick,
    }


def check_report(report: dict) -> list[str]:
    """The acceptance gate; empty list means the ceiling holds."""
    failures = []
    value = report["telemetry_overhead"]
    ceiling = report["telemetry_overhead_ceiling"]
    if value is not None and value > ceiling:
        failures.append(
            f"telemetry_overhead {value} over the {ceiling} ceiling"
        )
    return failures


def test_telemetry_bench(benchmark):
    from conftest import run_once

    report = run_once(benchmark, lambda: run_bench(quick=True))
    print()
    print(json.dumps(report, indent=2))
    # Quick mode on a noisy box: the byte-identity assertions inside
    # run_bench are the gate; the overhead ceiling gates the full run only.


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single-repeat smoke (CI artifact); the ceiling is "
             "reported, not gated",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args()

    report = run_bench(quick=args.quick)
    output = args.output
    if output is None and not args.quick:
        output = OUTPUT_PATH
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    failures = check_report(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures and not args.quick else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Fig. 12 benchmark: energy/power breakdown."""

from conftest import run_once
from repro.experiments import fig12_power


def test_fig12_power(benchmark, ctx):
    result = run_once(benchmark, fig12_power.run, ctx)
    print()
    print(result.to_table())
    assert 0.6 < result.extra["energy_ratio"] < 1.0  # paper: 0.93

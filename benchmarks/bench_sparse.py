"""Sparse-kernel benchmark: dense vs sparse wall time vs pruning threshold.

For each paper network, runs the same calibrated forward pass under
``CNVLUTIN_SPARSE=never`` (the honest dense baseline that multiplies every
ineffectual neuron) and ``CNVLUTIN_SPARSE=always`` (the zero-skipping
partitioned kernels of :mod:`repro.nn.sparse`) across a ladder of pruning
thresholds, asserting byte-identical logits at every rung — the wall-clock
counterpart of the paper's Fig. 9 cycle speedups.

Thresholds are calibrated per network and rung: rung ``q`` prunes each
conv input at the ``q``-quantile of its clean non-zero magnitudes, so the
ladder sweeps the ineffectual-neuron fraction the way Fig. 14's pruning
sweep does.

Run standalone to (re)generate ``BENCH_sparse.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_sparse.py

``--quick`` runs a tiny-scale single-network smoke (CI artifact; it checks
bit-identity but does not gate on the speedup floor).  The committed
``BENCH_sparse.json`` holds reduced-scale numbers; the full run enforces
``SPEEDUP_FLOOR`` on at least one network.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.nn import sparse as zskip
from repro.nn.inference import run_forward

BENCH_NETWORKS = ("alex", "nin", "vgg19")
QUANTILE_LADDER = (0.0, 0.3, 0.6)
REPEATS = 3
#: At calibrated pruning thresholds at least one paper network must show
#: this much end-to-end wall-clock speedup (the PR's acceptance floor).
SPEEDUP_FLOOR = 1.3
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sparse.json"


def _context(scale: str, networks: tuple[str, ...]) -> ExperimentContext:
    config = PaperConfig(
        scale=scale,
        networks=list(networks),
        num_images=1,
        use_cache=False,
        smallcnn=False,
    )
    return ExperimentContext(config)


def _ladder_thresholds(clean_result, prunable, quantile: float) -> dict[str, float]:
    """Per-layer thresholds at ``quantile`` of clean non-zero magnitudes."""
    if quantile <= 0.0:
        return {}
    thresholds = {}
    for name in prunable:
        values = np.abs(clean_result.conv_inputs[name])
        nonzero = values[values > 0]
        if nonzero.size:
            thresholds[name] = float(np.quantile(nonzero, quantile))
    return thresholds


def _timed_forward(network, store, image, thresholds, mode, repeats):
    """(best wall seconds, logits bytes) for one mode."""
    saved = os.environ.get(zskip.MODE_ENV)
    os.environ[zskip.MODE_ENV] = mode
    try:
        best = float("inf")
        blob = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_forward(
                network, store, image, thresholds=thresholds, keep_outputs=False
            )
            best = min(best, time.perf_counter() - start)
            blob = result.logits.tobytes()
        return best, blob
    finally:
        if saved is None:
            os.environ.pop(zskip.MODE_ENV, None)
        else:
            os.environ[zskip.MODE_ENV] = saved


def bench_network(ctx, name: str, ladder, repeats: int) -> dict:
    nctx = ctx.network_ctx(name)
    network, store, image = nctx.network, nctx.store, nctx.images[0]
    prunable = [layer.name for layer in network.conv_layers if layer.fused_relu]
    clean = run_forward(network, store, image, keep_outputs=True)

    rungs = []
    for quantile in ladder:
        thresholds = _ladder_thresholds(clean, prunable, quantile)
        # Warm both paths (weight-transpose cache, allocator) off the clock.
        _timed_forward(network, store, image, thresholds, "always", 1)
        dense_s, dense_blob = _timed_forward(
            network, store, image, thresholds, "never", repeats
        )
        before = obs.get_metrics().snapshot()["counters"]
        sparse_s, sparse_blob = _timed_forward(
            network, store, image, thresholds, "always", 1
        )
        after = obs.get_metrics().snapshot()["counters"]
        if repeats > 1:
            more_s, _ = _timed_forward(
                network, store, image, thresholds, "always", repeats - 1
            )
            sparse_s = min(sparse_s, more_s)
        assert sparse_blob == dense_blob, (
            f"{name} q={quantile}: sparse logits differ from dense"
        )
        key_total = "engine.sparse.macs.total"
        key_skipped = "engine.sparse.macs.skipped"
        macs_total = after.get(key_total, 0) - before.get(key_total, 0)
        macs_skipped = after.get(key_skipped, 0) - before.get(key_skipped, 0)
        rungs.append(
            {
                "quantile": quantile,
                "dense_s": round(dense_s, 4),
                "sparse_s": round(sparse_s, 4),
                "speedup": round(dense_s / sparse_s, 2),
                "mac_skip_fraction": round(
                    macs_skipped / macs_total if macs_total else 0.0, 3
                ),
            }
        )
    return {
        "network": name,
        "rungs": rungs,
        "max_speedup": max(r["speedup"] for r in rungs),
    }


def run_bench(scale: str, networks, ladder, repeats: int) -> dict:
    ctx = _context(scale, tuple(networks))
    results = [bench_network(ctx, name, ladder, repeats) for name in networks]
    return {
        "scale": scale,
        "num_images": 1,
        "quantile_ladder": list(ladder),
        "repeats": repeats,
        "networks": results,
        "best_network": max(results, key=lambda r: r["max_speedup"])["network"],
        "best_speedup": max(r["max_speedup"] for r in results),
        "speedup_floor": SPEEDUP_FLOOR,
    }


def test_sparse_bench(benchmark):
    from conftest import run_once

    report = run_once(
        benchmark,
        lambda: run_bench("tiny", ("alex",), (0.0, 0.3), repeats=1),
    )
    print()
    print(json.dumps(report, indent=2))
    # Tiny scale checks bit-identity only; speedup is gated at full scale.
    assert report["networks"][0]["rungs"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny-scale single-network smoke; no speedup gate, no JSON",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report = run_bench("tiny", ("alex",), (0.0, 0.3), repeats=1)
        print(json.dumps(report, indent=2))
        return 0

    report = run_bench("reduced", BENCH_NETWORKS, QUANTILE_LADDER, REPEATS)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if report["best_speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: best speedup {report['best_speedup']}x below the "
            f"{SPEEDUP_FLOOR}x floor on every network"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Fig. 1 benchmark: zero-neuron fractions per network."""

from conftest import run_once
from repro.experiments import fig1_zero_fraction


def test_fig1_zero_fraction(benchmark, ctx):
    result = run_once(benchmark, fig1_zero_fraction.run, ctx)
    print()
    print(result.to_table())
    rows = {r["network"]: r["zero_fraction"] for r in result.rows}
    assert 0.3 < rows["average"] < 0.6  # paper: 0.44

"""Ablation: ZFNAf brick size (8 / 16 / 32 neurons).

The paper uses 16-neuron bricks (4-bit offsets, +25% NM capacity).  Smaller
bricks skip zeros at finer granularity but need relatively larger offsets;
larger bricks amortize offsets but serialize more neurons per lane.  This
sweep quantifies the conv-layer cycle impact on the evaluated networks.
"""

from conftest import run_once
from repro.core.timing import cnv_network_timing
from repro.experiments.report import format_table


def _sweep(ctx):
    rows = []
    for name in ctx.config.networks:
        nctx = ctx.network_ctx(name)
        fwd = ctx.forward(name, 0)
        base = ctx.baseline_timing(name).total_cycles
        row = {"network": name}
        for brick in (8, 16, 32):
            cfg = ctx.arch.with_(brick_size=brick)
            cycles = cnv_network_timing(nctx.network, fwd.conv_inputs, cfg).total_cycles
            offset_bits = cfg.offset_bits
            row[f"speedup_b{brick}"] = base / cycles
            row[f"overhead_b{brick}"] = offset_bits / cfg.data_bits
        rows.append(row)
    return rows


def test_ablation_brick_size(benchmark, ctx):
    rows = run_once(benchmark, _sweep, ctx)
    print()
    print(format_table(rows))
    for row in rows:
        assert row["speedup_b16"] > 1.0
        # 16-neuron bricks cost 25% capacity overhead (Section IV-B1).
        assert row["overhead_b16"] == 0.25

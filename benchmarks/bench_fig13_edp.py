"""Fig. 13 benchmark: EDP / ED²P improvement."""

from conftest import run_once
from repro.experiments import fig13_edp


def test_fig13_edp(benchmark, ctx):
    result = run_once(benchmark, fig13_edp.run, ctx)
    print()
    print(result.to_table())
    avg = result.rows[-1]
    assert avg["EDP_gain"] > 1.0  # paper: 1.47
    assert avg["ED2P_gain"] > avg["EDP_gain"]  # paper: 2.01

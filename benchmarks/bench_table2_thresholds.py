"""Table II benchmark: lossless pruning thresholds per network."""

from conftest import run_once
from repro.experiments import table2_thresholds


def test_table2_thresholds(benchmark, ctx):
    result = run_once(benchmark, table2_thresholds.run, ctx)
    print()
    print(result.to_table())
    for row in result.rows:
        assert row["speedup"] > 1.0

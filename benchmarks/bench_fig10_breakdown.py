"""Fig. 10 benchmark: execution-activity breakdown."""

import pytest

from conftest import run_once
from repro.experiments import fig10_breakdown


def test_fig10_breakdown(benchmark, ctx):
    result = run_once(benchmark, fig10_breakdown.run, ctx)
    print()
    print(result.to_table())
    for row in result.rows:
        if row["arch"] == "baseline":
            assert row["total"] == pytest.approx(1.0)
            assert row["stall"] == 0.0
        else:
            assert row["total"] < 1.0  # CNV is never slower end to end

"""Microbenchmarks: throughput of the reproduction's own machinery.

Unlike the ``bench_fig*`` harnesses (which regenerate paper results), these
time the simulator substrate itself — useful when tuning the vectorized
timing models or the encoder.
"""

import numpy as np
import pytest

from repro.baseline.timing import baseline_conv_timing
from repro.baseline.workload import ConvWork
from repro.core.timing import cnv_conv_timing
from repro.core.zfnaf import decode, encode
from repro.hw.config import PAPER_CONFIG
from repro.nn.activations import sparse_activations
from repro.nn.layers import conv2d


@pytest.fixture(scope="module")
def vgg_like_layer():
    rng = np.random.default_rng(0)
    act = sparse_activations((256, 28, 28), 0.45, rng)
    geometry = {
        "in_depth": 256, "in_y": 28, "in_x": 28, "num_filters": 256,
        "kernel": 3, "stride": 1, "pad": 1, "groups": 1, "out_y": 28, "out_x": 28,
    }
    return ConvWork("vggish", geometry, act)


def test_zfnaf_encode_throughput(benchmark):
    rng = np.random.default_rng(1)
    act = sparse_activations((256, 28, 28), 0.45, rng)
    z = benchmark(encode, act)
    assert z.total_nonzero == (act != 0).sum()


def test_zfnaf_decode_throughput(benchmark):
    rng = np.random.default_rng(2)
    act = sparse_activations((256, 28, 28), 0.45, rng)
    z = encode(act)
    out = benchmark(decode, z)
    assert np.allclose(out, act)


def test_cnv_timing_model_throughput(benchmark, vgg_like_layer):
    timing = benchmark(cnv_conv_timing, vgg_like_layer, PAPER_CONFIG)
    assert timing.cycles > 0


def test_baseline_timing_model_throughput(benchmark, vgg_like_layer):
    timing = benchmark(baseline_conv_timing, vgg_like_layer, PAPER_CONFIG)
    assert timing.cycles > 0


def test_golden_conv_throughput(benchmark, vgg_like_layer):
    rng = np.random.default_rng(3)
    weights = rng.normal(size=(64, 256, 3, 3))
    out = benchmark(conv2d, vgg_like_layer.activations, weights, None, 1, 1)
    assert out.shape == (64, 28, 28)

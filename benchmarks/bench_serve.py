"""Serving benchmark: micro-batching vs batch-size-1 under offered load.

Drives the same deterministic mixed workload (classify / zero-fraction /
timing across two networks) through two in-process services at several
open-loop offered loads:

* ``batched``  — the real configuration (dynamic micro-batcher,
  ``max_batch`` 8);
* ``batch1``   — identical except ``max_batch`` 1, i.e. one forward per
  request (the no-batching strawman).

Correctness is cross-checked at every load: the canonical response
bytes of both modes must agree request for request, and both must agree
with direct one-at-a-time inference (:func:`repro.serve.models.
direct_response`) — micro-batching must win on throughput, never on
answers.

Run standalone to (re)generate ``BENCH_serve.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py

or under pytest-benchmark with the rest of the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.serve.loadgen import build_requests, run_load, summarize
from repro.serve.models import ModelRepository, direct_response
from repro.serve.requests import canonical_response_bytes
from repro.serve.service import InferenceService, ServeConfig

BENCH_NETWORKS = ("alex", "cnnS")
BENCH_REQUESTS = 60
#: Open-loop offered loads (requests/second), all at or beyond the
#: single-worker tiny-scale capacity so queueing (where micro-batching
#: pays) is visible at every committed point.
OFFERED_LOADS = (60.0, 180.0, 360.0)
#: Micro-batching must beat batch-size-1 throughput at the top offered
#: load by at least this factor (the PR's acceptance floor).
THROUGHPUT_FLOOR = 1.05
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


#: The overload point: offered load far beyond capacity against a tight
#: queue bound, so the shed rate (the explicit-backpressure answer)
#: becomes visible in the committed table.
OVERLOAD_RPS = 600.0
OVERLOAD_QUEUE_LIMIT = 8


def _config(max_batch: int, queue_limit: int = 256) -> ServeConfig:
    return ServeConfig(
        scale="tiny",
        networks=BENCH_NETWORKS,
        max_batch=max_batch,
        linger_ms=5.0,
        queue_limit=queue_limit,
        workers=1,
        use_cache=False,
    )


async def _drive(
    repo: ModelRepository, max_batch: int, rate: float,
    queue_limit: int = 256,
) -> dict:
    service = InferenceService(_config(max_batch, queue_limit), repo=repo)
    requests = build_requests(
        BENCH_REQUESTS, networks=list(BENCH_NETWORKS), seed=3
    )
    await service.start()
    try:
        result = await run_load(service, requests, rate=rate, seed=3)
    finally:
        await service.stop()
    summary = summarize(result)
    summary["responses"] = {
        rid: canonical_response_bytes(resp).decode("utf-8")
        for rid, resp in result.responses.items()
    }
    return summary


def run_bench() -> dict:
    repo = ModelRepository(_config(8).paper_config())
    # Warm calibration + the first-forward costs once, outside timing.
    warm = build_requests(2, networks=list(BENCH_NETWORKS), seed=3)
    for request in warm:
        direct_response(repo, request)

    reference = {
        request.id: canonical_response_bytes(
            direct_response(repo, request)
        ).decode("utf-8")
        for request in build_requests(
            BENCH_REQUESTS, networks=list(BENCH_NETWORKS), seed=3
        )
    }

    points = []
    for rate in OFFERED_LOADS:
        batched = asyncio.run(_drive(repo, 8, rate))
        batch1 = asyncio.run(_drive(repo, 1, rate))
        for mode, summary in (("batched", batched), ("batch1", batch1)):
            mismatched = [
                rid
                for rid, canon in summary.pop("responses").items()
                if canon != reference[rid]
            ]
            assert not mismatched, (
                f"{mode}@{rate}rps diverged from direct inference: "
                f"{mismatched[:3]}"
            )
        points.append(
            {
                "offered_rps": rate,
                "batched": batched,
                "batch1": batch1,
                "throughput_gain": round(
                    batched["throughput_rps"] / batch1["throughput_rps"], 2
                )
                if batch1["throughput_rps"]
                else float("inf"),
            }
        )

    # Overload: offered load far beyond capacity, tight queue bound.
    # Shed requests answer immediately with 429-style responses; the
    # accepted ones must still match direct inference byte for byte.
    overload = asyncio.run(
        _drive(repo, 4, OVERLOAD_RPS, queue_limit=OVERLOAD_QUEUE_LIMIT)
    )
    mismatched = [
        rid
        for rid, canon in overload.pop("responses").items()
        if json.loads(canon)["status"] == "ok" and canon != reference[rid]
    ]
    assert not mismatched, (
        f"accepted requests diverged under overload: {mismatched[:3]}"
    )
    assert overload["shed"] > 0, "overload point produced no shedding"
    overload["offered_rps"] = OVERLOAD_RPS
    overload["queue_limit"] = OVERLOAD_QUEUE_LIMIT

    top = points[-1]
    return {
        "scale": "tiny",
        "networks": list(BENCH_NETWORKS),
        "requests_per_point": BENCH_REQUESTS,
        "max_batch": 8,
        "correctness": "canonical bytes equal to direct inference at every load",
        "points": points,
        "overload": overload,
        "top_load_throughput_gain": top["throughput_gain"],
        "throughput_floor": THROUGHPUT_FLOOR,
    }


def test_serve_bench(benchmark):
    from conftest import run_once

    report = run_once(benchmark, run_bench)
    print()
    print(json.dumps(report, indent=2))
    assert report["top_load_throughput_gain"] >= THROUGHPUT_FLOOR


def main() -> int:
    report = run_bench()
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if report["top_load_throughput_gain"] < THROUGHPUT_FLOOR:
        print(
            f"FAIL: micro-batching throughput gain "
            f"{report['top_load_throughput_gain']}x below the "
            f"{THROUGHPUT_FLOOR}x floor at the top offered load"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

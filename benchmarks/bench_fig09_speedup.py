"""Fig. 9 benchmark: CNV speedup over DaDianNao (+ lossless pruning)."""

from conftest import run_once
from repro.experiments import fig9_speedup


def test_fig9_speedup(benchmark, ctx):
    result = run_once(benchmark, fig9_speedup.run, ctx)
    print()
    print(result.to_table())
    avg = [r for r in result.rows if r["network"] == "average"][0]
    assert 1.1 < avg["CNV"] < 1.8  # paper: 1.37
    assert avg["CNV+Pruning"] >= avg["CNV"] - 1e-9  # paper: 1.52

"""Three-way comparison: baseline vs zero-gating vs zero-skipping.

Section VI positions CNV against Eyeriss-style gating: gating converts
ineffectual products into energy savings only, CNV converts them into both
time and energy savings.  This bench quantifies the gap on the evaluated
networks.
"""

from conftest import run_once
from repro.baseline.gated import gated_network_timing
from repro.core.timing import cnv_network_timing
from repro.experiments.report import format_table
from repro.power.energy import energy_report


def _compare(ctx):
    rows = []
    freq = ctx.arch.frequency_ghz
    for name in ctx.config.networks:
        nctx = ctx.network_ctx(name)
        fwd = ctx.forward(name, 0)
        base = ctx.baseline_timing(name)
        gated = gated_network_timing(nctx.network, fwd.conv_inputs, ctx.arch)
        cnv = cnv_network_timing(nctx.network, fwd.conv_inputs, ctx.arch)
        e_base = energy_report(base.counters(), base.seconds(freq), "dadiannao")
        e_gated = energy_report(
            gated.counters(), gated.seconds(freq), "dadiannao-gated"
        )
        e_cnv = energy_report(cnv.counters(), cnv.seconds(freq), "cnvlutin")
        rows.append(
            {
                "network": name,
                "gating_speedup": base.total_cycles / gated.total_cycles,
                "cnv_speedup": base.total_cycles / cnv.total_cycles,
                "gating_energy_gain": e_base.total_j / e_gated.total_j,
                "cnv_energy_gain": e_base.total_j / e_cnv.total_j,
            }
        )
    return rows


def test_comparison_gating_vs_skipping(benchmark, ctx):
    rows = run_once(benchmark, _compare, ctx)
    print()
    print(format_table(rows))
    for row in rows:
        assert row["gating_speedup"] == 1.0  # gating never saves time
        assert row["cnv_speedup"] > 1.0
        assert row["gating_energy_gain"] > 1.0

"""Fig. 11 benchmark: area breakdown (+4.49% CNV overhead)."""

import pytest

from conftest import run_once
from repro.experiments import fig11_area


def test_fig11_area(benchmark, ctx):
    result = run_once(benchmark, fig11_area.run, ctx)
    print()
    print(result.to_table())
    total = [r for r in result.rows if r["component"] == "total"][0]
    assert total["delta"] == pytest.approx(0.0449, abs=0.001)

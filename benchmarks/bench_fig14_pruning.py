"""Fig. 14 benchmark: accuracy-vs-speedup pruning trade-off."""

from conftest import run_once
from repro.experiments import fig14_pruning


def test_fig14_pruning(benchmark, ctx):
    result = run_once(
        benchmark, fig14_pruning.run, ctx, deltas=(0.1, 0.3, 0.5)
    )
    print()
    print(result.to_table())
    small = [r for r in result.rows if r["network"] == "smallcnn(real)"]
    assert small, "real-accuracy trade-off points missing"
    # Relaxing the tolerance never reduces achievable speedup.
    speedups = [r["speedup"] for r in small]
    assert speedups == sorted(speedups)

"""Forward-engine benchmark: single vs batched vs incremental sweeps.

Times the three ways of evaluating threshold configurations on one
calibrated network at tiny scale:

* ``single``       — one ``run_forward`` per image (the pre-engine path);
* ``batched``      — one batched ``run_forward`` over the whole image stack;
* ``incremental``  — the Fig. 14 / Table II hot loop: a real
  coordinate-ascent :class:`repro.core.pruning.ThresholdSearcher` sweep
  over several tolerances, evaluated through
  :class:`repro.nn.engine.IncrementalForwardEngine` (plus the searcher's
  config memo), against the pre-engine cost of from-scratch per-image
  forwards for every configuration the search visits.

Also verifies the engine's bit-identity claim on the way: both sweep
paths must agree on every visited configuration's prediction stability.

Run standalone to (re)generate ``BENCH_forward.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_forward_engine.py

or under pytest-benchmark with the rest of the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_forward_engine.py

The committed ``BENCH_forward.json`` holds the measured numbers; CI runs
the standalone form as a smoke step and enforces the sweep-speedup floor.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.pruning import ThresholdSearcher, raw_to_real
from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext
from repro.nn.engine import IncrementalForwardEngine
from repro.nn.inference import run_forward

BENCH_NETWORK = "alex"
BENCH_NUM_IMAGES = 4
SWEEP_TOLERANCES = (0.0, 0.01, 0.10)
SEARCH_CANDIDATES = (0, 1, 2, 4, 8, 16)
#: The sweep must beat per-image from-scratch evaluation by at least this
#: factor (the PR's acceptance floor).
SWEEP_SPEEDUP_FLOOR = 3.0
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_forward.json"


def _bench_context() -> ExperimentContext:
    config = PaperConfig(
        scale="tiny",
        networks=[BENCH_NETWORK],
        num_images=BENCH_NUM_IMAGES,
        use_cache=False,
        smallcnn=False,
    )
    return ExperimentContext(config)


def _real_thresholds(raw_thresholds: dict[str, int]) -> dict[str, float]:
    return {k: raw_to_real(v) for k, v in raw_thresholds.items() if v}


def _evaluate_result(result, clean_predictions) -> tuple[float, float]:
    """(stability, pruned-zero-fraction) for one batched ForwardResult.

    Stability is the Fig. 14 proxy accuracy; the mean conv-input zero
    fraction stands in for the (value-dependent) speedup the real sweep
    computes, keeping the benchmark focused on forward cost.
    """
    predictions = np.argmax(result.logits, axis=1)
    stability = float((predictions == clean_predictions).mean())
    zero_fraction = float(
        np.mean([np.mean(arr == 0.0) for arr in result.conv_inputs.values()])
    )
    return stability, zero_fraction


def run_bench() -> dict:
    ctx = _bench_context()
    nctx = ctx.network_ctx(BENCH_NETWORK)
    network, store, images = nctx.network, nctx.store, nctx.images
    stack = np.stack(images)
    prunable = [layer.name for layer in network.conv_layers if layer.fused_relu]

    # -- single vs batched unpruned forward ---------------------------
    start = time.perf_counter()
    single_results = [
        run_forward(network, store, image, keep_outputs=False) for image in images
    ]
    single_forward_s = time.perf_counter() - start
    single_preds = np.array([np.argmax(r.logits) for r in single_results])

    start = time.perf_counter()
    batched = run_forward(network, store, stack, keep_outputs=False)
    batched_forward_s = time.perf_counter() - start
    clean_predictions = np.argmax(batched.logits, axis=1)
    assert np.array_equal(single_preds, clean_predictions)

    # -- the Fig. 14 / Table II hot loop: a coordinate-ascent sweep ----
    # New path: incremental engine + memoized searcher.
    engine = IncrementalForwardEngine(network, store, stack)

    def engine_evaluate(raw_thresholds: dict[str, int]) -> tuple[float, float]:
        result = engine.run(thresholds=_real_thresholds(raw_thresholds))
        return _evaluate_result(result, clean_predictions)

    searcher = ThresholdSearcher(
        evaluate=engine_evaluate,
        layer_names=prunable,
        candidates=SEARCH_CANDIDATES,
    )
    start = time.perf_counter()
    new_points = searcher.sweep(list(SWEEP_TOLERANCES))
    incremental_sweep_s = time.perf_counter() - start

    # Old path: the memo-less searcher evaluated every visit in `history`
    # with one from-scratch forward per image.  Memoization does not alter
    # the search trajectory, so the history is exactly the pre-engine
    # evaluation sequence; replay it the old way and check agreement.
    start = time.perf_counter()
    for point in searcher.history:
        thresholds = _real_thresholds(point.raw_thresholds)
        per_image = [
            run_forward(
                network, store, image, thresholds=thresholds, keep_outputs=False
            )
            for image in images
        ]
        stability = float(
            np.mean(
                [
                    int(np.argmax(r.logits)) == int(clean)
                    for r, clean in zip(per_image, clean_predictions)
                ]
            )
        )
        zero_fraction = float(
            np.mean(
                [
                    np.mean(arr == 0.0)
                    for r in per_image
                    for arr in r.conv_inputs.values()
                ]
            )
        )
        assert stability == point.accuracy
        _ = zero_fraction
    per_image_sweep_s = time.perf_counter() - start

    return {
        "scale": "tiny",
        "network": BENCH_NETWORK,
        "num_images": BENCH_NUM_IMAGES,
        "sweep_tolerances": list(SWEEP_TOLERANCES),
        "sweep_configs_visited": len(searcher.history),
        "sweep_configs_evaluated": len(searcher.history) - searcher.cache_hits,
        "sweep_points": [p.raw_thresholds for p in new_points],
        "single_forward_s": round(single_forward_s, 4),
        "batched_forward_s": round(batched_forward_s, 4),
        "batched_vs_single_speedup": round(single_forward_s / batched_forward_s, 2),
        "per_image_sweep_s": round(per_image_sweep_s, 4),
        "incremental_sweep_s": round(incremental_sweep_s, 4),
        "sweep_speedup": round(per_image_sweep_s / incremental_sweep_s, 2),
        "engine_cache_hit_rate": round(engine.stats.hit_rate, 3),
        "sweep_speedup_floor": SWEEP_SPEEDUP_FLOOR,
    }


def test_forward_engine_bench(benchmark):
    from conftest import run_once

    report = run_once(benchmark, run_bench)
    print()
    print(json.dumps(report, indent=2))
    assert report["sweep_speedup"] >= SWEEP_SPEEDUP_FLOOR


def main() -> int:
    report = run_bench()
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if report["sweep_speedup"] < SWEEP_SPEEDUP_FLOOR:
        print(
            f"FAIL: sweep speedup {report['sweep_speedup']}x below the "
            f"{SWEEP_SPEEDUP_FLOOR}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

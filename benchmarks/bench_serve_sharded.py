"""Sharded-serving benchmark: throughput scaling from cache affinity.

Drives a threshold-sweep workload (K = 24 distinct (network, pruning
threshold) groups cycling round-robin) through the consistent-hash
sharded tier at 1/2/4/8 shards, all at the 600 rps overload point of
the single-service benchmark, with the per-shard engine cache budget
pinned well below the full sweep's working set.

The mechanism under test is *affinity*, not parallelism — the box has
one core.  The router hashes ``(network, thresholds)`` so each shard
only ever sees its slice of the 24 groups: four shards hold their
slices entirely inside the per-engine ``CNVLUTIN_ENGINE_CACHE_MB``
budget and serve repeats from warm :class:`IncrementalForwardEngine`
state, while one shard cycling through all 24 groups evicts every
entry before it recurs and pays a cold forward per request.

Correctness is cross-checked at every shard count: each ok response's
canonical bytes must equal direct one-at-a-time inference.  Memory is
cross-checked with PSS (``/proc/<pid>/smaps_rollup``), which splits
shared pages across attachers: adding a shard must cost a small
fraction of the first one because weights live once in the shared
arena.

Run standalone to (re)generate ``BENCH_serve_sharded.json``::

    PYTHONPATH=src python benchmarks/bench_serve_sharded.py [--quick]

or under pytest with the rest of the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_sharded.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import tempfile
from pathlib import Path

from repro.nn.shm import process_pss_kb
from repro.serve.loadgen import build_sweep_requests, run_load, summarize
from repro.serve.models import ModelRepository, direct_response
from repro.serve.requests import canonical_response_bytes
from repro.serve.router import ShardedService, ShardTierConfig
from repro.serve.service import ServeConfig

BENCH_NETWORKS = ("alex", "cnnS")
#: 12 ``conv1`` threshold variants per network -> K = 24 groups.
#: Thresholding the *first* conv layer puts the variant in every
#: downstream layer's cache signature, so each group's engine state is
#: fully distinct (~0.30 MB alex / ~0.78 MB cnnS at tiny scale):
#: per-engine working sets of 3.6 MB (alex) and 9.3 MB (cnnS).
VARIANTS_PER_NETWORK = 12
SWEEP_LAYERS = ("conv1",)
#: Chosen so the deterministic hash assignment balances: at this base
#: no shard owns more than 3 cnnS variants (2.33 MB) at 4 or 8 shards.
SWEEP_BASE_THRESHOLD = 0.024
BENCH_REQUESTS = 240
#: Per-engine (per network, per shard process) cache budget in MB.
#: Below both single-shard working sets (3.6 / 9.3 MB -> cyclic access
#: + LRU evicts every group before it recurs, ~0% hits) yet above the
#: worst per-shard slice at 4 and 8 shards (2.33 MB -> fully warm).
ENGINE_CACHE_MB = 3.0
OFFERED_RPS = 600.0
SHARD_COUNTS = (1, 2, 4, 8)
#: Acceptance floors (the ISSUE's criteria).
SPEEDUP_FLOOR = 3.0        # 4-shard vs 1-shard throughput
SHED_CEILING = 0.05        # shed rate at 4 shards
PSS_GROWTH_CEILING = 0.25  # per-added-shard PSS vs single-shard PSS
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve_sharded.json"


def _config() -> ServeConfig:
    return ServeConfig(
        scale="tiny",
        networks=BENCH_NETWORKS,
        max_batch=4,
        linger_ms=2.0,
        queue_limit=1024,
        workers=1,
        use_cache=True,
    )


def _tier(shards: int) -> ShardTierConfig:
    return ShardTierConfig(
        shards=shards,
        window=16,
        backlog=512,
        engine_cache_mb=ENGINE_CACHE_MB,
    )


def _requests(count: int):
    return build_sweep_requests(
        count,
        networks=list(BENCH_NETWORKS),
        variants_per_network=VARIANTS_PER_NETWORK,
        kinds=["classify"],
        layers=SWEEP_LAYERS,
        base_threshold=SWEEP_BASE_THRESHOLD,
    )


async def _drive(
    shards: int, cache_dir: str, requests_count: int, warmup_cycles: int
) -> dict:
    service = ShardedService(
        config=_config(), tier=_tier(shards), cache_dir=cache_dir
    )
    groups = len(BENCH_NETWORKS) * VARIANTS_PER_NETWORK
    await service.start()
    try:
        # Warm every group's engine on its owning shard (closed loop,
        # outside timing).  The 1-shard case cannot stay warm — its
        # cache evicts each group before it recurs — which is the point.
        await run_load(service, _requests(groups * warmup_cycles))

        pids = dict(service.shard_pids())
        pids["router"] = os.getpid()
        pss_kb = {
            str(name): kb
            for name, pid in pids.items()
            if (kb := process_pss_kb(pid)) is not None
        }

        result = await run_load(
            service, _requests(requests_count), rate=OFFERED_RPS, seed=3
        )
    finally:
        await service.stop()
    summary = summarize(result)
    summary["responses"] = {
        rid: canonical_response_bytes(resp).decode("utf-8")
        for rid, resp in result.responses.items()
        if resp.status == "ok"
    }
    summary["pss_kb"] = pss_kb
    summary["pss_total_kb"] = sum(pss_kb.values())
    return summary


def run_bench(quick: bool = False) -> dict:
    shard_counts = (1, 2) if quick else SHARD_COUNTS
    requests_count = 48 if quick else BENCH_REQUESTS
    warmup_cycles = 1 if quick else 2

    with tempfile.TemporaryDirectory(prefix="cnvlutin-bench-shard-") as cache:
        # Reference: direct one-at-a-time inference for every request in
        # the workload (also pre-warms the shared artifact cache so the
        # shard runs below measure serving, not calibration).
        repo = ModelRepository(_config().paper_config(cache))
        reference = {}
        for request in _requests(requests_count):
            if request.id not in reference:
                reference[request.id] = canonical_response_bytes(
                    direct_response(repo, request)
                ).decode("utf-8")

        points = []
        for shards in shard_counts:
            summary = asyncio.run(
                _drive(shards, cache, requests_count, warmup_cycles)
            )
            mismatched = [
                rid
                for rid, canon in summary.pop("responses").items()
                if canon != reference[rid]
            ]
            assert not mismatched, (
                f"{shards}-shard responses diverged from direct "
                f"inference: {mismatched[:3]}"
            )
            summary["shards"] = shards
            points.append(summary)

    by_count = {point["shards"]: point for point in points}
    base = by_count[shard_counts[0]]
    top = by_count[shard_counts[-1]]
    speedup_at_4 = (
        round(by_count[4]["throughput_rps"] / base["throughput_rps"], 2)
        if 4 in by_count and base["throughput_rps"]
        else None
    )
    added = top["shards"] - base["shards"]
    pss_per_added_shard_kb = (
        round((top["pss_total_kb"] - base["pss_total_kb"]) / added, 1)
        if added and base["pss_total_kb"]
        else 0.0
    )
    return {
        "scale": "tiny",
        "networks": list(BENCH_NETWORKS),
        "sweep_groups": len(BENCH_NETWORKS) * VARIANTS_PER_NETWORK,
        "requests_per_point": requests_count,
        "offered_rps": OFFERED_RPS,
        "engine_cache_mb_per_shard": ENGINE_CACHE_MB,
        "correctness": (
            "ok responses byte-identical to direct inference at every "
            "shard count"
        ),
        "points": points,
        "speedup_at_4_shards": speedup_at_4,
        "speedup_floor": SPEEDUP_FLOOR,
        "shed_rate_at_4_shards": (
            by_count[4]["shed_rate"] if 4 in by_count else None
        ),
        "shed_ceiling": SHED_CEILING,
        "pss_per_added_shard_kb": pss_per_added_shard_kb,
        "pss_growth_vs_single": (
            round(pss_per_added_shard_kb / base["pss_total_kb"], 4)
            if base["pss_total_kb"]
            else None
        ),
        "pss_growth_ceiling": PSS_GROWTH_CEILING,
        "quick": quick,
    }


def check_report(report: dict) -> list[str]:
    """The acceptance gates; empty list means all floors hold."""
    failures = []
    if report["speedup_at_4_shards"] is not None:
        if report["speedup_at_4_shards"] < report["speedup_floor"]:
            failures.append(
                f"4-shard speedup {report['speedup_at_4_shards']}x below "
                f"the {report['speedup_floor']}x floor"
            )
        if report["shed_rate_at_4_shards"] > report["shed_ceiling"]:
            failures.append(
                f"4-shard shed rate {report['shed_rate_at_4_shards']} over "
                f"the {report['shed_ceiling']} ceiling"
            )
    growth = report["pss_growth_vs_single"]
    if growth is not None and growth > report["pss_growth_ceiling"]:
        failures.append(
            f"per-added-shard PSS growth {growth} of single-shard PSS "
            f"over the {report['pss_growth_ceiling']} ceiling"
        )
    return failures


def test_serve_sharded_bench(benchmark):
    from conftest import run_once

    report = run_once(benchmark, lambda: run_bench(quick=True))
    print()
    print(json.dumps(report, indent=2))
    assert not check_report(report)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="1/2-shard smoke (CI artifact); floors are reported, not "
             "written to the committed table",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args()

    report = run_bench(quick=args.quick)
    output = args.output
    if output is None and not args.quick:
        output = OUTPUT_PATH
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    failures = check_report(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures and not args.quick else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Multi-node scaling bench (Section IV-A's 'multiple nodes' support)."""

from conftest import run_once
from repro.cluster import ClusterConfig, cluster_network_timing
from repro.experiments.report import format_table


def _sweep(ctx):
    name = ctx.config.networks[0]
    nctx = ctx.network_ctx(name)
    fwd = ctx.forward(name, 0)
    rows = []
    for nodes in (1, 2, 4):
        cluster = ClusterConfig(num_nodes=nodes, node=ctx.arch)
        base = cluster_network_timing(
            nctx.network, fwd.conv_inputs, cluster, "dadiannao"
        )
        cnv = cluster_network_timing(
            nctx.network, fwd.conv_inputs, cluster, "cnvlutin"
        )
        rows.append(
            {
                "network": name,
                "nodes": nodes,
                "baseline_cycles": base.total_cycles,
                "cnv_cycles": cnv.total_cycles,
                "cnv_speedup": base.total_cycles / cnv.total_cycles,
            }
        )
    return rows


def test_cluster_scaling(benchmark, ctx):
    rows = run_once(benchmark, _sweep, ctx)
    print()
    print(format_table(rows))
    # More nodes never hurt, and CNV wins at every node count.
    cycles = [r["cnv_cycles"] for r in rows]
    assert cycles == sorted(cycles, reverse=True)
    for row in rows:
        assert row["cnv_speedup"] > 1.0

"""Ablation: cost of an all-zero brick (DESIGN.md decision #3).

The shipped model charges one cycle per empty brick — the NM bank supplies
at most one brick per cycle (Section IV-B3).  The ablation compares against
a free skip (``empty_brick_cycles=0``), bounding how much that conservative
choice costs.
"""

from conftest import run_once
from repro.core.timing import cnv_network_timing
from repro.experiments.report import format_table


def _speedups(ctx):
    rows = []
    for name in ctx.config.networks:
        nctx = ctx.network_ctx(name)
        fwd = ctx.forward(name, 0)
        base = ctx.baseline_timing(name).total_cycles
        one = cnv_network_timing(nctx.network, fwd.conv_inputs, ctx.arch).total_cycles
        free = cnv_network_timing(
            nctx.network, fwd.conv_inputs, ctx.arch.with_(empty_brick_cycles=0)
        ).total_cycles
        rows.append(
            {
                "network": name,
                "speedup_1cycle": base / one,
                "speedup_freeskip": base / free,
                "freeskip_benefit": one / free - 1.0,
            }
        )
    return rows


def test_ablation_empty_brick_cost(benchmark, ctx):
    rows = run_once(benchmark, _speedups, ctx)
    print()
    print(format_table(rows))
    for row in rows:
        assert row["speedup_freeskip"] >= row["speedup_1cycle"] - 1e-9
        # Real networks rarely produce fully-empty bricks: the one-cycle
        # charge costs little, which is why the paper could afford it.
        assert row["freeskip_benefit"] < 0.25

"""Analysis: NM bank pressure under the CNV dispatcher (Section IV-B3).

The dispatcher issues up to 16 concurrent brick fetches, one per lane.
With the paper's full-depth slicing each lane owns one bank; for shallower
layers bricks route from address-interleaved banks, and multiple lanes can
demand the same bank in the same cycle.  This analysis reconstructs one
window's fetch schedule per layer and histograms the per-cycle per-bank
demand — the worst case the sub-banked NM must sustain.
"""

import numpy as np

from conftest import run_once
from repro.core.dispatcher import bank_pressure
from repro.core.timing import lane_assignment
from repro.experiments.report import format_table
from repro.nn.activations import brick_nonzero_counts


def _window_fetch_schedule(counts, kernel, lanes, y0=0, x0=0):
    """Per-cycle fetch addresses (cycles, lanes) for one window.

    Lane ``l`` fetches its ``k``-th brick when it finishes brick ``k-1``,
    i.e. at the cumulative-cost boundary; addresses are linear brick
    indices into the (y, x, bz) NM layout.
    """
    bricks_z = counts.shape[2]
    assignment = lane_assignment(kernel, kernel, bricks_z, lanes)
    lane_bricks = [[] for _ in range(lanes)]
    for fy in range(kernel):
        for fx in range(kernel):
            for bz in range(bricks_z):
                lane = int(assignment[fy, fx, bz])
                addr = ((y0 + fy) * counts.shape[1] + (x0 + fx)) * bricks_z + bz
                cost = max(int(counts[y0 + fy, x0 + fx, bz]), 1)
                lane_bricks[lane].append((addr, cost))
    horizon = max(
        (sum(c for _, c in bricks) for bricks in lane_bricks), default=1
    )
    schedule = np.full((horizon, lanes), -1, dtype=np.int64)
    for lane, bricks in enumerate(lane_bricks):
        t = 0
        for addr, cost in bricks:
            schedule[t, lane] = addr
            t += cost
    return schedule


def _analyze(ctx):
    rows = []
    name = ctx.config.networks[0]
    nctx = ctx.network_ctx(name)
    fwd = ctx.forward(name, 0)
    for layer in nctx.network.conv_layers[1:4]:
        act = fwd.conv_inputs[layer.name]
        counts = brick_nonzero_counts(act, ctx.arch.brick_size)
        schedule = _window_fetch_schedule(
            counts, layer.kernel, ctx.arch.neuron_lanes
        )
        hist = bank_pressure(schedule, num_banks=ctx.arch.neuron_lanes)
        total = sum(hist.values())
        rows.append(
            {
                "layer": f"{name}/{layer.name}",
                "max_concurrent_per_bank": max(hist) if hist else 0,
                "conflict_fraction": sum(
                    v for k, v in hist.items() if k > 1
                ) / max(total, 1),
            }
        )
    return rows


def test_dispatcher_bank_pressure(benchmark, ctx):
    rows = run_once(benchmark, _analyze, ctx)
    print()
    print(format_table(rows))
    for row in rows:
        # Sub-banking must cover the observed worst case; prefetch slack
        # makes anything within one brick-time per bank sustainable.
        assert row["max_concurrent_per_bank"] >= 1

"""Integrity-checking overhead on the sharded serving tier.

Drives the same threshold-sweep workload through a 2-shard tier three
times — ``CNVLUTIN_INTEGRITY`` off, ``sample:0.05``, and ``always`` —
and reports closed-loop throughput for each mode.  The mechanism under
test is the cost of the ABFT epilogues (two extra checksum matvecs per
verified GEMM/matvec, `repro.reliability.integrity`) plus the per-reply
arena CRC recheck cadence, so the run is closed-loop: every request's
compute lands on the same shard state and throughput differences are
checking cost, not queueing artifacts.

Floors (the ISSUE's acceptance criteria):

* ``always`` costs at most 15% of unverified throughput;
* ``sample:0.05`` costs at most 3%.

Correctness is cross-checked per mode: verification is read-only, so
every ok response must be canonical-byte-identical to the ``off`` run —
the "flip a switch in prod" guarantee that enabling checking can never
change answers.

Repeats are *interleaved* across modes (off, sample, always, off, …)
and the best throughput per mode is kept, so neither a one-off
scheduler stall nor OS caches warming monotonically over the session
reads as checking overhead.

Run standalone to (re)generate ``BENCH_integrity.json``::

    PYTHONPATH=src python benchmarks/bench_integrity.py [--quick]

or under pytest with the rest of the harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_integrity.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
from pathlib import Path

from repro.serve.loadgen import build_sweep_requests, run_load, summarize
from repro.serve.models import ModelRepository, direct_response
from repro.serve.requests import canonical_response_bytes
from repro.serve.router import ShardedService, ShardTierConfig
from repro.serve.service import ServeConfig

BENCH_NETWORKS = ("alex", "cnnS")
VARIANTS_PER_NETWORK = 4
SHARDS = 2
BENCH_REQUESTS = 480
REPEATS = 3
#: (label, CNVLUTIN_INTEGRITY value) in measurement order; "off" first
#: because it is the baseline the other two are normalised against.
MODES = (("off", "off"), ("sample", "sample:0.05"), ("always", "always"))
#: Acceptance ceilings on (1 - throughput/off_throughput).
ALWAYS_OVERHEAD_CEILING = 0.15
SAMPLE_OVERHEAD_CEILING = 0.03
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_integrity.json"


def _config() -> ServeConfig:
    return ServeConfig(
        scale="tiny",
        networks=BENCH_NETWORKS,
        max_batch=4,
        linger_ms=2.0,
        queue_limit=1024,
        workers=1,
        use_cache=True,
    )


def _tier(integrity: str) -> ShardTierConfig:
    return ShardTierConfig(
        shards=SHARDS,
        window=16,
        backlog=512,
        integrity=integrity,
        # One CRC pass over the arena per deadline, not per reply: the
        # bench measures the steady-state cadence production would run.
        integrity_recheck_s=5.0,
    )


def _requests(count: int):
    return build_sweep_requests(
        count,
        networks=list(BENCH_NETWORKS),
        variants_per_network=VARIANTS_PER_NETWORK,
        kinds=["classify"],
    )


async def _drive(integrity: str, cache_dir: str, requests_count: int) -> dict:
    service = ShardedService(
        config=_config(), tier=_tier(integrity), cache_dir=cache_dir
    )
    groups = len(BENCH_NETWORKS) * VARIANTS_PER_NETWORK
    await service.start()
    try:
        # Warm every group's engine outside timing.
        await run_load(service, _requests(groups))
        result = await run_load(service, _requests(requests_count))
    finally:
        await service.stop()
    summary = summarize(result)
    summary["responses"] = {
        rid: canonical_response_bytes(resp).decode("utf-8")
        for rid, resp in result.responses.items()
        if resp.status == "ok"
    }
    return summary


def run_bench(quick: bool = False) -> dict:
    requests_count = 36 if quick else BENCH_REQUESTS
    repeats = 1 if quick else REPEATS

    with tempfile.TemporaryDirectory(prefix="cnvlutin-bench-integ-") as cache:
        # Reference bytes from direct inference (also pre-warms the
        # shared artifact cache so shard runs measure serving).
        repo = ModelRepository(_config().paper_config(cache))
        reference = {}
        for request in _requests(requests_count):
            if request.id not in reference:
                reference[request.id] = canonical_response_bytes(
                    direct_response(repo, request)
                ).decode("utf-8")

        best: dict[str, dict] = {}
        for _ in range(repeats):
            for label, integrity in MODES:
                summary = asyncio.run(
                    _drive(integrity, cache, requests_count)
                )
                mismatched = [
                    rid
                    for rid, canon in summary.pop("responses").items()
                    if canon != reference[rid]
                ]
                assert not mismatched, (
                    f"integrity={integrity} changed response bytes: "
                    f"{mismatched[:3]}"
                )
                assert summary["error"] == 0, summary
                summary["mode"] = label
                summary["integrity"] = integrity
                if label not in best or (
                    summary["throughput_rps"]
                    > best[label]["throughput_rps"]
                ):
                    best[label] = summary
        points = [best[label] for label, _ in MODES]

    by_mode = {point["mode"]: point for point in points}
    base = by_mode["off"]["throughput_rps"]

    def overhead(mode: str):
        if not base:
            return None
        return round(1.0 - by_mode[mode]["throughput_rps"] / base, 4)

    return {
        "scale": "tiny",
        "networks": list(BENCH_NETWORKS),
        "shards": SHARDS,
        "requests_per_point": requests_count,
        "repeats": repeats,
        "correctness": (
            "ok responses byte-identical to direct inference in every "
            "mode (verification is read-only)"
        ),
        "points": points,
        "sample_overhead": overhead("sample"),
        "sample_overhead_ceiling": SAMPLE_OVERHEAD_CEILING,
        "always_overhead": overhead("always"),
        "always_overhead_ceiling": ALWAYS_OVERHEAD_CEILING,
        "quick": quick,
    }


def check_report(report: dict) -> list[str]:
    """The acceptance gates; empty list means all ceilings hold."""
    failures = []
    for key, ceiling_key in (
        ("sample_overhead", "sample_overhead_ceiling"),
        ("always_overhead", "always_overhead_ceiling"),
    ):
        value = report[key]
        if value is not None and value > report[ceiling_key]:
            failures.append(
                f"{key} {value} over the {report[ceiling_key]} ceiling"
            )
    return failures


def test_integrity_bench(benchmark):
    from conftest import run_once

    report = run_once(benchmark, lambda: run_bench(quick=True))
    print()
    print(json.dumps(report, indent=2))
    # Quick mode on a noisy box: the byte-identity assertions inside
    # run_bench are the gate; overhead ceilings gate the full run only.


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single-repeat smoke (CI artifact); ceilings are reported, "
             "not gated",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args()

    report = run_bench(quick=args.quick)
    output = args.output
    if output is None and not args.quick:
        output = OUTPUT_PATH
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    failures = check_report(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures and not args.quick else 0


if __name__ == "__main__":
    raise SystemExit(main())

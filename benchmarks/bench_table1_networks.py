"""Table I benchmark: the evaluated networks."""

from conftest import run_once
from repro.experiments import table1_networks


def test_table1_networks(benchmark, ctx):
    result = run_once(benchmark, table1_networks.run, ctx)
    print()
    print(result.to_table())
    assert all(r["conv_layers"] == r["paper"] for r in result.rows)

"""Ablation: encoding the first convolutional layer.

CNV leaves conv1 unencoded (its image input is dense, Section IV-B4);
the per-layer software flag could enable encoding anyway.  This ablation
measures how little that would buy — the justification for the paper's
choice.
"""

from conftest import run_once
from repro.core.timing import cnv_network_timing
from repro.experiments.report import format_table


def _sweep(ctx):
    rows = []
    for name in ctx.config.networks:
        nctx = ctx.network_ctx(name)
        fwd = ctx.forward(name, 0)
        base = ctx.baseline_timing(name).total_cycles
        plain = cnv_network_timing(nctx.network, fwd.conv_inputs, ctx.arch).total_cycles
        encoded = cnv_network_timing(
            nctx.network, fwd.conv_inputs, ctx.arch.with_(first_layer_encoded=True)
        ).total_cycles
        rows.append(
            {
                "network": name,
                "speedup_conv1_raw": base / plain,
                "speedup_conv1_encoded": base / encoded,
            }
        )
    return rows


def test_ablation_first_layer_encoding(benchmark, ctx):
    rows = run_once(benchmark, _sweep, ctx)
    print()
    print(format_table(rows))
    for row in rows:
        # Image inputs are dense: encoding conv1 may even slow it down
        # (offset serialization without zeros to skip) — gains stay small.
        gain = row["speedup_conv1_encoded"] / row["speedup_conv1_raw"]
        assert gain < 1.3

"""Ablation: baseline fetch-block packing policy (DESIGN.md decision #8).

Packing only matters where the input depth is not a multiple of 16 — the
unencoded first layers above all — but those layers bound CNV's end-to-end
speedup (Amdahl).  This sweep compares dense window packing (default)
against NM-row-contiguous packing on conv1 runtime share and speedup.
"""

from conftest import run_once
from repro.baseline.timing import baseline_network_timing
from repro.core.timing import cnv_network_timing
from repro.experiments.report import format_table


def _sweep(ctx):
    rows = []
    for name in ctx.config.networks:
        nctx = ctx.network_ctx(name)
        fwd = ctx.forward(name, 0)
        row = {"network": name}
        for packing in ("window", "row"):
            cfg = ctx.arch.with_(fetch_packing=packing)
            base = baseline_network_timing(nctx.network, fwd.conv_inputs, cfg)
            cnv = cnv_network_timing(nctx.network, fwd.conv_inputs, cfg)
            first = nctx.network.first_conv_layers()
            conv1 = sum(l.cycles for l in base.layers if l.name in first)
            row[f"conv1_share_{packing}"] = conv1 / base.total_cycles
            row[f"speedup_{packing}"] = base.total_cycles / cnv.total_cycles
        rows.append(row)
    return rows


def test_ablation_fetch_packing(benchmark, ctx):
    rows = run_once(benchmark, _sweep, ctx)
    print()
    print(format_table(rows))
    for row in rows:
        # Row packing can only make the (unencoded) first layer pricier,
        # lowering end-to-end speedup.
        assert row["conv1_share_row"] >= row["conv1_share_window"] - 1e-9
        assert row["speedup_row"] <= row["speedup_window"] + 1e-9

"""Shared fixtures for the benchmark harness.

Every paper table/figure has a ``bench_*`` module here; running

    pytest benchmarks/ --benchmark-only

regenerates them all and prints each table.  Scale and network selection
come from the environment:

``CNVLUTIN_BENCH_SCALE``     tiny (default) | reduced | full
``CNVLUTIN_BENCH_NETWORKS``  comma-separated subset of the six networks
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext


def bench_config() -> PaperConfig:
    scale = os.environ.get("CNVLUTIN_BENCH_SCALE", "tiny")
    networks = os.environ.get("CNVLUTIN_BENCH_NETWORKS")
    kwargs = {"scale": scale}
    if networks:
        kwargs["networks"] = networks.split(",")
    return PaperConfig(**kwargs)


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(bench_config())


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

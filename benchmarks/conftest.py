"""Shared fixtures for the benchmark harness.

Every paper table/figure has a ``bench_*`` module here; running

    pytest benchmarks/ --benchmark-only

regenerates them all and prints each table.  Scale and network selection
come from the environment:

``CNVLUTIN_BENCH_SCALE``     tiny (default) | reduced | full
``CNVLUTIN_BENCH_NETWORKS``  comma-separated subset of the six networks
``CNVLUTIN_BENCH_JOBS``      when > 1, prewarm the content-addressed
                             artifact cache on a process pool before the
                             first benchmark (one work unit per
                             (experiment, network) pair), so a full bench
                             session spends its time measuring the
                             experiment assembly rather than recomputing
                             forwards serially.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.context import ExperimentContext


def bench_config() -> PaperConfig:
    scale = os.environ.get("CNVLUTIN_BENCH_SCALE", "tiny")
    networks = os.environ.get("CNVLUTIN_BENCH_NETWORKS")
    kwargs = {"scale": scale}
    if networks:
        kwargs["networks"] = networks.split(",")
    return PaperConfig(**kwargs)


def bench_jobs() -> int:
    try:
        return int(os.environ.get("CNVLUTIN_BENCH_JOBS", "1"))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    config = bench_config()
    jobs = bench_jobs()
    if jobs > 1:
        from repro.experiments.parallel import execute_units, plan_units
        from repro.experiments.runner import EXPERIMENTS

        execute_units(config, plan_units(config, list(EXPERIMENTS)), jobs=jobs)
    return ExperimentContext(config)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

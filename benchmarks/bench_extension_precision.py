"""Extension bench: CNV combined with variable per-layer precision.

Section VII's future-work direction quantified: find each network's
minimal per-layer activation precisions (prediction-stability criterion),
then model bit-serial CNV lanes at those precisions.  Zero skipping and
precision scaling compound nearly multiplicatively.
"""

from conftest import run_once
from repro.extensions.precision import (
    combined_cnv_precision_timing,
    minimal_precisions,
    precision_speedup_factor,
)
from repro.experiments.report import format_table


def _sweep(ctx):
    rows = []
    for name in ctx.config.networks[:3]:  # precision search is forward-heavy
        nctx = ctx.network_ctx(name)
        profile = minimal_precisions(nctx.network, nctx.store, nctx.images[:2])
        fwd = ctx.forward(name, 0)
        base = ctx.baseline_timing(name).total_cycles
        plain = ctx.cnv_timing(name).total_cycles
        combined = combined_cnv_precision_timing(
            nctx.network, fwd.conv_inputs, ctx.arch, profile.bits
        ).total_cycles
        rows.append(
            {
                "network": name,
                "mean_bits": profile.mean_bits,
                "cnv_speedup": base / plain,
                "cnv+precision_speedup": base / combined,
                "ideal_precision_factor": precision_speedup_factor(profile.bits),
            }
        )
    return rows


def test_extension_cnv_plus_precision(benchmark, ctx):
    rows = run_once(benchmark, _sweep, ctx)
    print()
    print(format_table(rows))
    for row in rows:
        assert row["mean_bits"] <= 16
        assert row["cnv+precision_speedup"] >= row["cnv_speedup"] - 1e-9
